//! The MemcachedGPU benchmark (Hetherington et al., SoCC'15; STM-based
//! variant per Castro et al., PACT'19; §IV-A of the paper).
//!
//! The mutable shared state is an n-way set-associative cache with LRU
//! replacement. Each slot exposes four transactional items (key tag, value,
//! LRU stamp, metadata). Two operations:
//!
//! * **GET** (read-only): hash the key to a set, scan the ways' key tags
//!   until a match, read the value. Reads a variable number of items, upper
//!   bounded by the associativity — exactly the knob Fig. 3 sweeps.
//! * **PUT** (update): same scan; on a hit it issues 4 writes (value, LRU
//!   stamp, metadata, key tag); on a miss it reads every way's LRU stamp,
//!   evicts the least recently used slot and writes the 4 fields there.
//!
//! Keys are drawn Zipfian (the paper follows Atikoglu et al.: 99.8 % GETs).
//! The cache is pre-populated with one key per slot; a key's home way is
//! decorrelated from its popularity by a multiplicative scramble so the mean
//! scan length grows with the way count.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stm_core::{TxLogic, TxOp, TxSource};

use crate::zipf::Zipfian;

/// Transactional fields per cache slot.
pub const FIELDS_PER_SLOT: u64 = 4;
/// Field index of the key tag.
pub const F_KEY: u64 = 0;
/// Field index of the value.
pub const F_VALUE: u64 = 1;
/// Field index of the LRU stamp.
pub const F_LRU: u64 = 2;
/// Field index of the metadata word.
pub const F_META: u64 = 3;

/// Memcached workload parameters.
#[derive(Debug, Clone)]
pub struct MemcachedConfig {
    /// Total slots; must be a power of two (the paper uses 1 M).
    pub capacity: u64,
    /// Associativity; must be a power of two dividing `capacity`.
    pub ways: u64,
    /// GET fraction in per-mille (the paper uses 998 = 99.8 %).
    pub get_per_mille: u16,
    /// Zipfian exponent for key popularity.
    pub zipf_s: f64,
}

impl MemcachedConfig {
    /// The paper's §IV-B configuration at a given associativity.
    pub fn paper(ways: u64) -> Self {
        Self {
            capacity: 1 << 20,
            ways,
            get_per_mille: 998,
            zipf_s: 0.99,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small(capacity: u64, ways: u64) -> Self {
        Self {
            capacity,
            ways,
            get_per_mille: 998,
            zipf_s: 0.99,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        assert!(self.capacity.is_power_of_two() && self.ways.is_power_of_two());
        assert!(self.ways <= self.capacity);
        self.capacity / self.ways
    }

    /// Number of transactional items (slots × fields).
    pub fn num_items(&self) -> u64 {
        self.capacity * FIELDS_PER_SLOT
    }

    /// Slot index of `(set, way)`.
    pub fn slot(&self, set: u64, way: u64) -> u64 {
        set * self.ways + way
    }

    /// Transactional item id of a slot field.
    pub fn item(&self, slot: u64, field: u64) -> u64 {
        slot * FIELDS_PER_SLOT + field
    }

    /// The set a key hashes to.
    pub fn set_of(&self, key: u64) -> u64 {
        key & (self.num_sets() - 1)
    }

    /// The way a pre-populated key resides in (`key = set + num_sets·way`).
    pub fn home_way(&self, key: u64) -> u64 {
        key / self.num_sets()
    }

    /// Key-tag encoding stored in the KEY field; 0 means "empty slot".
    pub fn tag(key: u64) -> u64 {
        key + 1
    }

    /// Map a Zipfian popularity rank to a key, decorrelating popularity from
    /// home way (odd-multiplier scramble is a permutation of `0..capacity`).
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) & (self.capacity - 1)
    }

    /// Initial `(item, value)` state: slot `(s, w)` holds key
    /// `s + num_sets·w` with a deterministic value.
    pub fn initial_state(&self) -> HashMap<u64, u64> {
        let mut m = HashMap::with_capacity(self.num_items() as usize);
        for set in 0..self.num_sets() {
            for way in 0..self.ways {
                let key = set + self.num_sets() * way;
                let slot = self.slot(set, way);
                m.insert(self.item(slot, F_KEY), Self::tag(key));
                m.insert(self.item(slot, F_VALUE), Self::initial_value(key));
                m.insert(self.item(slot, F_LRU), 0);
                m.insert(self.item(slot, F_META), 0);
            }
        }
        m
    }

    /// The value a key is pre-populated with.
    pub fn initial_value(key: u64) -> u64 {
        key ^ 0xABCD_EF01
    }
}

/// Progress of the scan/evict state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// About to read the key tag of `way` (next ways pending).
    Scan { way: u64 },
    /// Key matched at `way`; GET: about to read the value.
    ReadValue { way: u64 },
    /// PUT hit at `way`: emitting the 4 metadata writes, `i` of 4 done.
    WriteFields { way: u64, i: u8 },
    /// PUT miss: reading LRU stamps, tracking the minimum.
    ScanLru {
        way: u64,
        best_way: u64,
        best_lru: u64,
    },
    /// Finished.
    Done,
}

/// One Memcached transaction (GET or PUT).
#[derive(Debug, Clone)]
pub struct MemcachedTx {
    cfg_ways: u64,
    key: u64,
    set: u64,
    /// `None` for GET; `Some((value, lru_stamp))` for PUT.
    put: Option<(u64, u64)>,
    step: Step,
    /// For finished GETs: the value read (test observability).
    got: Option<u64>,
}

impl MemcachedTx {
    /// Build a GET.
    pub fn get(cfg: &MemcachedConfig, key: u64) -> Self {
        Self {
            cfg_ways: cfg.ways,
            key,
            set: cfg.set_of(key),
            put: None,
            step: Step::Scan { way: 0 },
            got: None,
        }
    }

    /// Build a PUT of `value` with LRU stamp `lru_stamp`.
    pub fn put(cfg: &MemcachedConfig, key: u64, value: u64, lru_stamp: u64) -> Self {
        Self {
            cfg_ways: cfg.ways,
            key,
            set: cfg.set_of(key),
            put: Some((value, lru_stamp)),
            step: Step::Scan { way: 0 },
            got: None,
        }
    }

    /// The key this transaction targets.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// For a finished GET that hit: the value read.
    pub fn got(&self) -> Option<u64> {
        self.got
    }

    fn slot(&self, way: u64) -> u64 {
        self.set * self.cfg_ways + way
    }

    fn item(&self, way: u64, field: u64) -> u64 {
        self.slot(way) * FIELDS_PER_SLOT + field
    }

    /// The 4 metadata writes of a PUT landing in `way`, in order.
    fn put_write(&self, way: u64, i: u8) -> TxOp {
        let (value, lru) = self.put.expect("PUT fields");
        match i {
            0 => TxOp::Write {
                item: self.item(way, F_VALUE),
                value,
            },
            1 => TxOp::Write {
                item: self.item(way, F_LRU),
                value: lru,
            },
            2 => TxOp::Write {
                item: self.item(way, F_META),
                value: lru ^ self.key,
            },
            _ => TxOp::Write {
                item: self.item(way, F_KEY),
                value: MemcachedConfig::tag(self.key),
            },
        }
    }
}

impl TxLogic for MemcachedTx {
    fn is_read_only(&self) -> bool {
        self.put.is_none()
    }

    fn reset(&mut self) {
        self.step = Step::Scan { way: 0 };
        self.got = None;
    }

    fn next(&mut self, last_read: Option<u64>) -> TxOp {
        loop {
            match self.step {
                Step::Scan { way } => {
                    if way > 0 || last_read.is_some() {
                        // `last_read` holds the tag of way-1 (only reachable
                        // with Some after the first emit).
                        if way > 0 {
                            let tag = last_read.expect("scan read result");
                            if tag == MemcachedConfig::tag(self.key) {
                                let hit_way = way - 1;
                                self.step = match self.put {
                                    None => Step::ReadValue { way: hit_way },
                                    Some(_) => Step::WriteFields { way: hit_way, i: 0 },
                                };
                                continue;
                            }
                        }
                    }
                    if way == self.cfg_ways {
                        // Miss. GETs finish; PUTs evict.
                        match self.put {
                            None => {
                                self.step = Step::Done;
                                return TxOp::Finish;
                            }
                            Some(_) => {
                                self.step = Step::ScanLru {
                                    way: 0,
                                    best_way: 0,
                                    best_lru: u64::MAX,
                                };
                                continue;
                            }
                        }
                    }
                    self.step = Step::Scan { way: way + 1 };
                    return TxOp::Read {
                        item: self.item(way, F_KEY),
                    };
                }
                Step::ReadValue { way } => {
                    // (Reached via `continue` from the scan arm, which already
                    // consumed `last_read` as the matching key tag.)
                    self.step = Step::Done;
                    return TxOp::Read {
                        item: self.item(way, F_VALUE),
                    };
                }
                Step::WriteFields { way, i } => {
                    if i == 4 {
                        self.step = Step::Done;
                        return TxOp::Finish;
                    }
                    self.step = Step::WriteFields { way, i: i + 1 };
                    return self.put_write(way, i);
                }
                Step::ScanLru {
                    way,
                    best_way,
                    best_lru,
                } => {
                    if way > 0 {
                        let stamp = last_read.expect("lru read result");
                        if stamp < best_lru {
                            self.step = Step::ScanLru {
                                way,
                                best_way: way - 1,
                                best_lru: stamp,
                            };
                            continue;
                        }
                    }
                    if way == self.cfg_ways {
                        // Evict the LRU victim: 4 writes.
                        self.step = Step::WriteFields {
                            way: best_way,
                            i: 0,
                        };
                        continue;
                    }
                    self.step = Step::ScanLru {
                        way: way + 1,
                        best_way,
                        best_lru,
                    };
                    return TxOp::Read {
                        item: self.item(way, F_LRU),
                    };
                }
                Step::Done => {
                    if let Some(v) = last_read {
                        self.got = Some(v);
                    }
                    return TxOp::Finish;
                }
            }
        }
    }
}

/// Per-thread transaction stream for the Memcached workload.
pub struct MemcachedSource {
    cfg: MemcachedConfig,
    zipf: Zipfian,
    rng: StdRng,
    remaining: usize,
    lru_clock: u64,
}

impl MemcachedSource {
    /// A stream of `txs` transactions for `thread`. Pass a shared
    /// [`Zipfian`] (built once per experiment — it holds the CDF).
    pub fn new(cfg: &MemcachedConfig, zipf: Zipfian, seed: u64, thread: usize, txs: usize) -> Self {
        Self {
            cfg: cfg.clone(),
            zipf,
            rng: StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)),
            remaining: txs,
            // Stamps are counter·2048 + thread-id: unique across ≤2048
            // threads and safely within 32 bits (values must pack).
            lru_clock: (thread as u64) & 0x7FF,
        }
    }
}

impl TxSource for MemcachedSource {
    type Tx = MemcachedTx;

    fn next_tx(&mut self) -> Option<MemcachedTx> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.zipf.sample(&mut self.rng) as u64;
        let key = self.cfg.key_of_rank(rank);
        let is_get = self.rng.random_range(0..1000u16) < self.cfg.get_per_mille;
        Some(if is_get {
            MemcachedTx::get(&self.cfg, key)
        } else {
            self.lru_clock += 2048;
            let value = self.rng.random::<u32>() as u64;
            MemcachedTx::put(&self.cfg, key, value, self.lru_clock)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::logic::run_sequential;

    #[test]
    fn geometry_is_consistent() {
        let cfg = MemcachedConfig::small(64, 8);
        assert_eq!(cfg.num_sets(), 8);
        assert_eq!(cfg.num_items(), 256);
        for key in 0..64 {
            let set = cfg.set_of(key);
            let way = cfg.home_way(key);
            assert!(set < 8 && way < 8);
            assert_eq!(set + cfg.num_sets() * way, key);
        }
    }

    #[test]
    fn key_scramble_is_a_permutation() {
        let cfg = MemcachedConfig::small(256, 4);
        let mut seen = std::collections::HashSet::new();
        for r in 0..256 {
            assert!(seen.insert(cfg.key_of_rank(r)));
        }
    }

    #[test]
    fn get_hits_prepopulated_key() {
        let cfg = MemcachedConfig::small(64, 8);
        let mut heap = cfg.initial_state();
        for key in [0u64, 13, 63] {
            let mut tx = MemcachedTx::get(&cfg, key);
            let (reads, writes) = run_sequential(&mut tx, &mut heap);
            assert!(writes.is_empty());
            // Scan reads home_way+1 key tags, then the value.
            assert_eq!(reads.len() as u64, cfg.home_way(key) + 2);
            assert_eq!(reads.last().unwrap().1, MemcachedConfig::initial_value(key));
            assert!(tx.is_read_only());
        }
    }

    #[test]
    fn scan_length_bounded_by_ways() {
        let cfg = MemcachedConfig::small(64, 8);
        let mut heap = cfg.initial_state();
        for key in 0..64u64 {
            let mut tx = MemcachedTx::get(&cfg, key);
            let (reads, _) = run_sequential(&mut tx, &mut heap);
            assert!(reads.len() as u64 <= cfg.ways + 1);
        }
    }

    #[test]
    fn put_hit_issues_exactly_four_writes() {
        let cfg = MemcachedConfig::small(64, 8);
        let mut heap = cfg.initial_state();
        let mut tx = MemcachedTx::put(&cfg, 5, 1234, 77);
        let (_, writes) = run_sequential(&mut tx, &mut heap);
        assert_eq!(writes.len(), 4);
        let slot = cfg.slot(cfg.set_of(5), cfg.home_way(5));
        assert_eq!(heap[&cfg.item(slot, F_VALUE)], 1234);
        assert_eq!(heap[&cfg.item(slot, F_LRU)], 77);
        assert_eq!(heap[&cfg.item(slot, F_KEY)], MemcachedConfig::tag(5));
    }

    #[test]
    fn put_miss_evicts_lru_victim() {
        let cfg = MemcachedConfig::small(64, 8);
        let mut heap = cfg.initial_state();
        // Age way 3 of set 2 to be clearly the LRU... all stamps start 0, so
        // bump every other way of set 2.
        for way in 0..8u64 {
            if way != 3 {
                heap.insert(cfg.item(cfg.slot(2, way), F_LRU), 100 + way);
            }
        }
        // Key 66 maps to set 66 % 8 = 2 but is not in the cache (>= capacity).
        let key = 64 + 2;
        assert_eq!(cfg.set_of(key), 2);
        let mut tx = MemcachedTx::put(&cfg, key, 9999, 500);
        let (reads, writes) = run_sequential(&mut tx, &mut heap);
        // Scan all 8 key tags + 8 LRU stamps.
        assert_eq!(reads.len(), 16);
        assert_eq!(writes.len(), 4);
        let victim = cfg.slot(2, 3);
        assert_eq!(heap[&cfg.item(victim, F_KEY)], MemcachedConfig::tag(key));
        assert_eq!(heap[&cfg.item(victim, F_VALUE)], 9999);
        // Subsequent GET finds it.
        let mut get = MemcachedTx::get(&cfg, key);
        run_sequential(&mut get, &mut heap);
        assert_eq!(get.got(), Some(9999));
    }

    #[test]
    fn get_after_put_reads_new_value() {
        let cfg = MemcachedConfig::small(64, 4);
        let mut heap = cfg.initial_state();
        let mut put = MemcachedTx::put(&cfg, 7, 4242, 10);
        run_sequential(&mut put, &mut heap);
        let mut get = MemcachedTx::get(&cfg, 7);
        run_sequential(&mut get, &mut heap);
        assert_eq!(get.got(), Some(4242));
    }

    #[test]
    fn reset_replays_identically() {
        let cfg = MemcachedConfig::small(64, 8);
        let mut heap = cfg.initial_state();
        let mut tx = MemcachedTx::put(&cfg, 9, 1, 2);
        let first = run_sequential(&mut tx, &mut heap.clone());
        tx.reset();
        let second = run_sequential(&mut tx, &mut heap);
        assert_eq!(first, second);
    }

    #[test]
    fn source_respects_get_ratio() {
        let cfg = MemcachedConfig::small(1024, 4);
        let zipf = Zipfian::new(cfg.capacity as usize, cfg.zipf_s);
        let mut src = MemcachedSource::new(&cfg, zipf, 7, 0, 20_000);
        let mut gets = 0;
        let mut total = 0;
        while let Some(tx) = src.next_tx() {
            total += 1;
            if tx.is_read_only() {
                gets += 1;
            }
        }
        let pct = 1000.0 * gets as f64 / total as f64;
        assert!((pct - 998.0).abs() < 5.0, "got {pct} per-mille GETs");
    }

    #[test]
    fn source_is_deterministic() {
        let cfg = MemcachedConfig::small(256, 4);
        let collect = |seed| {
            let zipf = Zipfian::new(cfg.capacity as usize, cfg.zipf_s);
            let mut src = MemcachedSource::new(&cfg, zipf, seed, 3, 50);
            let mut keys = Vec::new();
            while let Some(tx) = src.next_tx() {
                keys.push((tx.key(), tx.is_read_only()));
            }
            keys
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }
}
