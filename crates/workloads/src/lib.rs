//! # workloads — STM-agnostic benchmark workloads
//!
//! The two benchmarks of the paper's evaluation (§IV-A), expressed as
//! [`stm_core::TxLogic`] state machines so that every STM implementation
//! (CSMV, JVSTM-GPU, PR-STM, JVSTM-CPU) runs the *same* transaction bodies:
//!
//! * [`bank`] — the classic Bank benchmark: update transactions transfer a
//!   random amount between two accounts; read-only transactions sum the
//!   balance of every account (long-running ROTs, the workload MV schemes
//!   are built for).
//! * [`memcached`] — the mutable shared state of MemcachedGPU: an n-way
//!   set-associative cache with LRU replacement, driven by a Zipfian key
//!   stream at 99.8 % GETs.
//! * [`list`] — a transactional sorted linked-list set: the irregular,
//!   pointer-chasing structure class the paper's introduction motivates
//!   (not part of the paper's evaluation; used by extra tests/examples).
//! * [`zipf`] — the Zipfian sampler used by the Memcached key stream.
//!
//! All generators are deterministic given a seed, which the reproducibility
//! tests rely on.

#![forbid(unsafe_code)]

pub mod bank;
pub mod list;
pub mod memcached;
pub mod zipf;

pub use bank::{BankConfig, BankSource, BankTx};
pub use list::{ListConfig, ListOpKind, ListSource, ListTx};
pub use memcached::{MemcachedConfig, MemcachedSource, MemcachedTx};
pub use zipf::Zipfian;
