//! The Bank benchmark (Herlihy et al., PODC'03; §IV-A of the paper).
//!
//! A fixed set of accounts with an initial balance. Two transaction types:
//!
//! * **Transfer** (update): read two random accounts, move a random amount
//!   from one to the other — 2 reads + 2 writes, no blind writes.
//! * **Balance** (read-only): read *every* account and sum the balances —
//!   the long-running ROT that single-versioned STMs choke on.
//!
//! The total balance is invariant, which the integration tests assert after
//! every run on every STM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stm_core::{TxLogic, TxOp, TxSource};

/// Bank workload parameters.
#[derive(Debug, Clone)]
pub struct BankConfig {
    /// Number of accounts (the paper uses 6 000).
    pub accounts: u64,
    /// Initial balance per account.
    pub initial_balance: u64,
    /// Percentage of read-only (Balance) transactions, 0–100.
    pub rot_pct: u8,
    /// Transfers move `1..=max_transfer` units.
    pub max_transfer: u64,
    /// When set, transfers stay within one partition
    /// (`account % partitions`), the footprint restriction of multi-server
    /// CSMV. Balance scans are unaffected.
    pub partitions: Option<u64>,
}

impl BankConfig {
    /// The configuration used throughout the paper's §IV-B: 6 000 accounts.
    pub fn paper(rot_pct: u8) -> Self {
        Self {
            accounts: 6_000,
            initial_balance: 1_000,
            rot_pct,
            max_transfer: 100,
            partitions: None,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn small(accounts: u64, rot_pct: u8) -> Self {
        Self {
            accounts,
            initial_balance: 1_000,
            rot_pct,
            max_transfer: 100,
            partitions: None,
        }
    }

    /// Restrict transfers to partitions of `p` (for multi-server CSMV).
    pub fn partitioned(mut self, p: u64) -> Self {
        assert!(p >= 1 && p <= self.accounts);
        self.partitions = Some(p);
        self
    }

    /// The invariant total balance.
    pub fn total_balance(&self) -> u64 {
        self.accounts * self.initial_balance
    }

    /// Initial `(item, value)` state for the history checker.
    pub fn initial_state(&self) -> std::collections::HashMap<u64, u64> {
        (0..self.accounts)
            .map(|i| (i, self.initial_balance))
            .collect()
    }
}

/// One Bank transaction.
#[derive(Debug, Clone)]
pub enum BankTx {
    /// Transfer `amount` from account `from` to account `to`.
    Transfer {
        /// Source account.
        from: u64,
        /// Destination account.
        to: u64,
        /// Units to move.
        amount: u64,
        /// Progress: 0 read-from, 1 read-to, 2 write-from, 3 write-to, 4 done.
        step: u8,
        /// Balance read from `from`.
        from_balance: u64,
        /// Balance read from `to`.
        to_balance: u64,
    },
    /// Sum the balance of accounts `0..accounts`.
    Balance {
        /// Total number of accounts to scan.
        accounts: u64,
        /// Next account to read.
        next: u64,
        /// Running sum (observable by tests via [`BankTx::balance_sum`]).
        sum: u64,
    },
}

impl BankTx {
    /// For a finished Balance transaction, the sum it computed.
    pub fn balance_sum(&self) -> Option<u64> {
        match self {
            BankTx::Balance {
                accounts,
                next,
                sum,
            } if next == accounts => Some(*sum),
            _ => None,
        }
    }
}

impl TxLogic for BankTx {
    fn is_read_only(&self) -> bool {
        matches!(self, BankTx::Balance { .. })
    }

    fn reset(&mut self) {
        match self {
            BankTx::Transfer {
                step,
                from_balance,
                to_balance,
                ..
            } => {
                *step = 0;
                *from_balance = 0;
                *to_balance = 0;
            }
            BankTx::Balance { next, sum, .. } => {
                *next = 0;
                *sum = 0;
            }
        }
    }

    fn next(&mut self, last_read: Option<u64>) -> TxOp {
        match self {
            BankTx::Transfer {
                from,
                to,
                amount,
                step,
                from_balance,
                to_balance,
            } => {
                match *step {
                    0 => {
                        *step = 1;
                        TxOp::Read { item: *from }
                    }
                    1 => {
                        *from_balance = last_read.expect("read result");
                        *step = 2;
                        TxOp::Read { item: *to }
                    }
                    2 => {
                        *to_balance = last_read.expect("read result");
                        *step = 3;
                        // Transfers never overdraw: move at most the balance.
                        let amt = (*amount).min(*from_balance);
                        TxOp::Write {
                            item: *from,
                            value: *from_balance - amt,
                        }
                    }
                    3 => {
                        *step = 4;
                        let amt = (*amount).min(*from_balance);
                        TxOp::Write {
                            item: *to,
                            value: *to_balance + amt,
                        }
                    }
                    _ => TxOp::Finish,
                }
            }
            BankTx::Balance {
                accounts,
                next,
                sum,
            } => {
                if let Some(v) = last_read {
                    *sum += v;
                }
                if *next < *accounts {
                    let item = *next;
                    *next += 1;
                    TxOp::Read { item }
                } else {
                    TxOp::Finish
                }
            }
        }
    }
}

/// Per-thread transaction stream for the Bank workload.
pub struct BankSource {
    cfg: BankConfig,
    rng: StdRng,
    remaining: usize,
}

impl BankSource {
    /// A stream of `txs` transactions for `thread`; streams with the same
    /// `(seed, thread)` are identical.
    pub fn new(cfg: &BankConfig, seed: u64, thread: usize, txs: usize) -> Self {
        Self {
            cfg: cfg.clone(),
            rng: StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            remaining: txs,
        }
    }
}

impl TxSource for BankSource {
    type Tx = BankTx;

    fn next_tx(&mut self) -> Option<BankTx> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let is_rot = self.rng.random_range(0..100u8) < self.cfg.rot_pct;
        Some(if is_rot {
            BankTx::Balance {
                accounts: self.cfg.accounts,
                next: 0,
                sum: 0,
            }
        } else {
            let (from, to) = match self.cfg.partitions {
                None => {
                    let from = self.rng.random_range(0..self.cfg.accounts);
                    let mut to = self.rng.random_range(0..self.cfg.accounts);
                    if to == from {
                        to = (to + 1) % self.cfg.accounts;
                    }
                    (from, to)
                }
                Some(p) => {
                    // Both accounts in the same residue class mod p.
                    let from = self.rng.random_range(0..self.cfg.accounts);
                    let class = from % p;
                    let members = (self.cfg.accounts - class).div_ceil(p);
                    assert!(
                        members >= 2,
                        "partitioned Bank needs ≥ 2 accounts per partition"
                    );
                    let mut idx = self.rng.random_range(0..members);
                    if class + idx * p == from {
                        idx = (idx + 1) % members;
                    }
                    (from, class + idx * p)
                }
            };
            let amount = self.rng.random_range(1..=self.cfg.max_transfer);
            BankTx::Transfer {
                from,
                to,
                amount,
                step: 0,
                from_balance: 0,
                to_balance: 0,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use stm_core::logic::run_sequential;

    #[test]
    fn transfer_preserves_total_balance() {
        let cfg = BankConfig::small(10, 0);
        let mut heap: HashMap<u64, u64> = cfg.initial_state();
        let mut src = BankSource::new(&cfg, 1, 0, 50);
        while let Some(mut tx) = src.next_tx() {
            run_sequential(&mut tx, &mut heap);
        }
        let total: u64 = heap.values().sum();
        assert_eq!(total, cfg.total_balance());
    }

    #[test]
    fn transfer_never_overdraws() {
        let cfg = BankConfig::small(4, 0);
        let mut heap: HashMap<u64, u64> = cfg.initial_state();
        let mut src = BankSource::new(&cfg, 2, 0, 500);
        while let Some(mut tx) = src.next_tx() {
            run_sequential(&mut tx, &mut heap);
            assert!(heap.values().all(|&v| v <= cfg.total_balance()));
        }
    }

    #[test]
    fn balance_sums_all_accounts() {
        let cfg = BankConfig::small(8, 100);
        let mut heap: HashMap<u64, u64> = cfg.initial_state();
        let mut tx = BankTx::Balance {
            accounts: 8,
            next: 0,
            sum: 0,
        };
        let (reads, writes) = run_sequential(&mut tx, &mut heap);
        assert_eq!(reads.len(), 8);
        assert!(writes.is_empty());
        assert_eq!(tx.balance_sum(), Some(cfg.total_balance()));
        assert!(tx.is_read_only());
    }

    #[test]
    fn reset_makes_replay_deterministic() {
        let cfg = BankConfig::small(16, 0);
        let mut heap: HashMap<u64, u64> = cfg.initial_state();
        let mut src = BankSource::new(&cfg, 3, 1, 1);
        let mut tx = src.next_tx().unwrap();
        let first = run_sequential(&mut tx, &mut heap.clone());
        tx.reset();
        let second = run_sequential(&mut tx, &mut heap);
        assert_eq!(first, second);
    }

    #[test]
    fn rot_percentage_is_respected() {
        let cfg = BankConfig::small(16, 25);
        let mut src = BankSource::new(&cfg, 4, 0, 10_000);
        let mut rots = 0;
        let mut total = 0;
        while let Some(tx) = src.next_tx() {
            total += 1;
            if tx.is_read_only() {
                rots += 1;
            }
        }
        let pct = 100.0 * rots as f64 / total as f64;
        assert!((pct - 25.0).abs() < 2.0, "got {pct}% ROTs");
    }

    #[test]
    fn streams_are_seed_deterministic_and_thread_distinct() {
        let cfg = BankConfig::small(16, 50);
        let collect = |seed, thread| {
            let mut src = BankSource::new(&cfg, seed, thread, 20);
            let mut v = Vec::new();
            while let Some(tx) = src.next_tx() {
                v.push(format!("{tx:?}"));
            }
            v
        };
        assert_eq!(collect(1, 0), collect(1, 0));
        assert_ne!(collect(1, 0), collect(1, 1));
        assert_ne!(collect(1, 0), collect(2, 0));
    }

    #[test]
    fn transfer_reads_before_writes() {
        let mut tx = BankTx::Transfer {
            from: 0,
            to: 1,
            amount: 5,
            step: 0,
            from_balance: 0,
            to_balance: 0,
        };
        assert_eq!(tx.next(None), TxOp::Read { item: 0 });
        assert_eq!(tx.next(Some(100)), TxOp::Read { item: 1 });
        assert_eq!(tx.next(Some(200)), TxOp::Write { item: 0, value: 95 });
        assert_eq!(
            tx.next(None),
            TxOp::Write {
                item: 1,
                value: 205
            }
        );
        assert_eq!(tx.next(None), TxOp::Finish);
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use std::collections::HashMap;
    use stm_core::logic::run_sequential;

    #[test]
    fn partitioned_transfers_stay_in_class() {
        let cfg = BankConfig::small(60, 0).partitioned(4);
        let mut src = BankSource::new(&cfg, 8, 0, 200);
        while let Some(tx) = src.next_tx() {
            if let BankTx::Transfer { from, to, .. } = tx {
                assert_eq!(from % 4, to % 4);
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn partitioned_transfers_preserve_total() {
        let cfg = BankConfig::small(32, 0).partitioned(3);
        let mut heap: HashMap<u64, u64> = cfg.initial_state();
        let mut src = BankSource::new(&cfg, 9, 1, 100);
        while let Some(mut tx) = src.next_tx() {
            run_sequential(&mut tx, &mut heap);
        }
        assert_eq!(heap.values().sum::<u64>(), cfg.total_balance());
    }
}
