//! Command vocabulary and the RESP→transaction mapping.
//!
//! A `MULTI…EXEC` block maps to one CSMV transaction; a bare `GET`,
//! `SET` or `INCRBY` maps to a single-op transaction. [`KvTx`] is the
//! `TxLogic` state machine the engine executes: it replays its op list
//! against the store (reads through the MV snapshot, writes into the
//! private write-set, `INCRBY` as read-modify-write) and records one
//! [`KvResult`] per op into a shared sink the connection reads back once
//! the commit is certified. Keys are integers in `0..keys` — the store
//! is a dense array of versioned boxes, not a hash map.

use std::sync::{Arc, Mutex, MutexGuard};

use stm_core::{TxLogic, TxOp};

/// One logical KV operation inside a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read a key.
    Get(u64),
    /// Write a key.
    Set(u64, u64),
    /// Read-modify-write: add a (possibly negative) delta, wrapping in
    /// the store's 32-bit value domain (see [`VALUE_MAX`]).
    IncrBy(u64, i64),
}

/// The largest storable value. The native store packs `(cts << 32) |
/// value` into one `AtomicU64` so a version can never tear; values
/// therefore live in a 32-bit domain, enforced here at the service
/// boundary: `SET` rejects larger values and `INCRBY` wraps modulo
/// 2^32. A value with high bits set would silently corrupt the packed
/// timestamp and poison the item's version ring (every reader sees
/// only "too new" versions and aborts with `VersionOverflow` forever).
pub const VALUE_MAX: u64 = u32::MAX as u64;

/// The per-op result a committed [`KvTx`] recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvResult {
    /// `SET` acknowledged.
    Ok,
    /// The value a `GET` read, or the value an `INCRBY` wrote.
    Value(u64),
}

/// Shared result sink: the transaction writes into it during execution,
/// the connection reads it after the completion arrives. The engine owns
/// the transaction until then, so the two sides never race.
pub type ResultSink = Arc<Mutex<Vec<KvResult>>>;

/// A KV transaction body: executes `ops` in order through the engine.
pub struct KvTx {
    ops: Vec<KvOp>,
    results: ResultSink,
    step: usize,
    /// A `Get` whose read value arrives on the next `next()` call.
    get_pending: bool,
    /// An `IncrBy` whose read value arrives on the next `next()` call,
    /// to be folded into the write.
    incr_pending: Option<(u64, i64)>,
}

impl KvTx {
    /// Build a transaction over `ops` recording into `results`.
    pub fn new(ops: Vec<KvOp>, results: ResultSink) -> Self {
        Self {
            ops,
            results,
            step: 0,
            get_pending: false,
            incr_pending: None,
        }
    }

    fn results_mut(&self) -> MutexGuard<'_, Vec<KvResult>> {
        // Poison requires a panic while holding the guard; pushes don't
        // panic, so recovering the inner value is always sound.
        self.results.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl TxLogic for KvTx {
    fn is_read_only(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, KvOp::Get(_)))
    }

    fn reset(&mut self) {
        self.step = 0;
        self.get_pending = false;
        self.incr_pending = None;
        self.results_mut().clear();
    }

    fn next(&mut self, last_read: Option<u64>) -> TxOp {
        if let Some((item, delta)) = self.incr_pending.take() {
            let value = (last_read.unwrap_or(0) as u32).wrapping_add(delta as u32) as u64;
            self.results_mut().push(KvResult::Value(value));
            self.step += 1;
            return TxOp::Write { item, value };
        }
        if self.get_pending {
            self.get_pending = false;
            self.results_mut()
                .push(KvResult::Value(last_read.unwrap_or(0)));
            self.step += 1;
        }
        match self.ops.get(self.step) {
            None => TxOp::Finish,
            Some(&KvOp::Get(item)) => {
                self.get_pending = true;
                TxOp::Read { item }
            }
            Some(&KvOp::Set(item, value)) => {
                self.results_mut().push(KvResult::Ok);
                self.step += 1;
                TxOp::Write { item, value }
            }
            Some(&KvOp::IncrBy(item, delta)) => {
                self.incr_pending = Some((item, delta));
                TxOp::Read { item }
            }
        }
    }
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe; immediate `+PONG`.
    Ping,
    /// Single-op read transaction (or queued op inside `MULTI`).
    Get(u64),
    /// Single-op write transaction (or queued op inside `MULTI`).
    Set(u64, u64),
    /// Single-op read-modify-write (or queued op inside `MULTI`).
    IncrBy(u64, i64),
    /// Open a queued transaction block.
    Multi,
    /// Commit the queued block as one transaction.
    Exec,
    /// Drop the queued block.
    Discard,
    /// Ask the service to stop accepting connections and shut down.
    Shutdown,
}

fn parse_u64(arg: &[u8], what: &str) -> Result<u64, String> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| format!("ERR {what} is not an unsigned integer"))
}

/// Parse a storable value: an unsigned integer within [`VALUE_MAX`].
fn parse_value(arg: &[u8]) -> Result<u64, String> {
    let v = parse_u64(arg, "value")?;
    if v > VALUE_MAX {
        return Err(format!("ERR value is out of range (0..={VALUE_MAX})"));
    }
    Ok(v)
}

fn parse_i64(arg: &[u8], what: &str) -> Result<i64, String> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| format!("ERR {what} is not an integer"))
}

fn arity(argv: &[Vec<u8>], want: usize, name: &str) -> Result<(), String> {
    if argv.len() != want {
        Err(format!("ERR wrong number of arguments for '{name}'"))
    } else {
        Ok(())
    }
}

impl Command {
    /// Parse one frame's argv. Errors are RESP error strings (without the
    /// leading `-`).
    pub fn parse(argv: &[Vec<u8>]) -> Result<Command, String> {
        let Some(name) = argv.first() else {
            return Err("ERR empty command".to_string());
        };
        let name = name.to_ascii_uppercase();
        match name.as_slice() {
            b"PING" => {
                arity(argv, 1, "ping")?;
                Ok(Command::Ping)
            }
            b"GET" => {
                arity(argv, 2, "get")?;
                Ok(Command::Get(parse_u64(&argv[1], "key")?))
            }
            b"SET" => {
                arity(argv, 3, "set")?;
                Ok(Command::Set(
                    parse_u64(&argv[1], "key")?,
                    parse_value(&argv[2])?,
                ))
            }
            b"INCRBY" => {
                arity(argv, 3, "incrby")?;
                Ok(Command::IncrBy(
                    parse_u64(&argv[1], "key")?,
                    parse_i64(&argv[2], "delta")?,
                ))
            }
            b"MULTI" => {
                arity(argv, 1, "multi")?;
                Ok(Command::Multi)
            }
            b"EXEC" => {
                arity(argv, 1, "exec")?;
                Ok(Command::Exec)
            }
            b"DISCARD" => {
                arity(argv, 1, "discard")?;
                Ok(Command::Discard)
            }
            b"SHUTDOWN" => {
                arity(argv, 1, "shutdown")?;
                Ok(Command::Shutdown)
            }
            other => Err(format!(
                "ERR unknown command '{}'",
                String::from_utf8_lossy(other)
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::logic::run_sequential;

    fn argv(words: &[&str]) -> Vec<Vec<u8>> {
        words.iter().map(|w| w.as_bytes().to_vec()).collect()
    }

    #[test]
    fn commands_parse_case_insensitively_with_arity_checks() {
        assert_eq!(Command::parse(&argv(&["ping"])), Ok(Command::Ping));
        assert_eq!(Command::parse(&argv(&["GeT", "7"])), Ok(Command::Get(7)));
        assert_eq!(
            Command::parse(&argv(&["set", "3", "41"])),
            Ok(Command::Set(3, 41))
        );
        assert_eq!(
            Command::parse(&argv(&["INCRBY", "3", "-5"])),
            Ok(Command::IncrBy(3, -5))
        );
        assert_eq!(Command::parse(&argv(&["MULTI"])), Ok(Command::Multi));
        assert!(Command::parse(&argv(&["GET"])).is_err());
        assert!(Command::parse(&argv(&["SET", "x", "1"])).is_err());
        assert!(Command::parse(&argv(&["HGETALL", "h"])).is_err());
        assert!(Command::parse(&[]).is_err());
    }

    #[test]
    fn values_are_confined_to_the_store_packing_domain() {
        // SET refuses values whose high bits would corrupt the packed
        // `(cts << 32) | value` timestamp.
        assert_eq!(
            Command::parse(&argv(&["SET", "0", "4294967295"])),
            Ok(Command::Set(0, VALUE_MAX))
        );
        assert!(Command::parse(&argv(&["SET", "0", "4294967296"]))
            .unwrap_err()
            .contains("out of range"));
        // INCRBY below zero wraps within 32 bits, never into the
        // timestamp field (the regression: 0 - 1 must not become
        // u64::MAX and poison the item's version ring).
        let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let mut tx = KvTx::new(vec![KvOp::IncrBy(0, -1)], sink.clone());
        let mut store = std::collections::HashMap::from([(0u64, 0u64)]);
        let _ = run_sequential(&mut tx, &mut store);
        assert_eq!(store[&0], VALUE_MAX);
        assert_eq!(*sink.lock().unwrap(), vec![KvResult::Value(VALUE_MAX)]);
    }

    #[test]
    fn kvtx_replays_ops_in_order_with_read_own_write() {
        let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let mut tx = KvTx::new(
            vec![
                KvOp::Get(0),
                KvOp::Set(0, 10),
                KvOp::Get(0),
                KvOp::IncrBy(0, -3),
                KvOp::Get(1),
            ],
            sink.clone(),
        );
        // Drive the state machine the way a worker does, over a tiny
        // two-item store.
        let mut store = [5u64, 9u64];
        let mut last: Option<u64> = None;
        let mut ws: Vec<(u64, u64)> = Vec::new();
        loop {
            match tx.next(last) {
                TxOp::Read { item } => {
                    let v = ws
                        .iter()
                        .rev()
                        .find(|&&(i, _)| i == item)
                        .map(|&(_, v)| v)
                        .unwrap_or(store[item as usize]);
                    last = Some(v);
                }
                TxOp::Write { item, value } => {
                    ws.push((item, value));
                    last = None;
                }
                TxOp::Finish => break,
            }
        }
        for (item, value) in ws {
            store[item as usize] = value;
        }
        assert_eq!(
            *sink.lock().unwrap(),
            vec![
                KvResult::Value(5),
                KvResult::Ok,
                KvResult::Value(10),
                KvResult::Value(7),
                KvResult::Value(9),
            ]
        );
        assert_eq!(store, [7, 9]);
    }

    #[test]
    fn reset_clears_recorded_results_for_a_clean_retry() {
        let sink: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let mut tx = KvTx::new(vec![KvOp::Get(0), KvOp::Set(1, 2)], sink.clone());
        let _ = run_sequential(&mut tx, &mut std::collections::HashMap::new());
        assert_eq!(sink.lock().unwrap().len(), 2);
        tx.reset();
        assert!(sink.lock().unwrap().is_empty());
        assert!(!tx.is_read_only());
        assert!(KvTx::new(vec![KvOp::Get(0)], sink).is_read_only());
    }
}
