//! # csmv-service — a network front-end for the native CSMV engine
//!
//! A Redis-subset TCP server speaking RESP: `GET`/`SET`/`INCRBY` map to
//! single-op CSMV transactions, a `MULTI…EXEC` block maps to one
//! transaction, and `PING`/`DISCARD`/`SHUTDOWN` are control commands.
//! Every connection is pipelined (replies strictly in request order),
//! and every accepted request gets exactly one terminal reply:
//!
//! * `+OK` / bulk / integer — the transaction committed;
//! * `-RETRY <abort_reason>` — the transaction aborted terminally, with
//!   the `AbortReason` taxonomy key (`retry_budget_exhausted`,
//!   `server_timeout`, `server_unavailable`, …);
//! * `-BUSY …` — backpressure: the engine's bounded submit queue was
//!   full and the request was shed before execution.
//!
//! Consistency model: bare pipelined commands are *independent
//! concurrent transactions* — they may execute in any serializable
//! order, and ordering against a previous command on the same
//! connection is only guaranteed once that command's reply arrived
//! (its commit happened before the reply was written). Atomicity and
//! intra-request ordering are what `MULTI…EXEC` is for, including
//! read-own-write inside the block.
//!
//! The server itself holds no transactional state — it is a framing and
//! flow-control layer over [`csmv_native::NativeEngine`], and a
//! `--check-history` run validates the full committed history against
//! the opacity oracle at shutdown, exactly like the in-process harnesses.

#![forbid(unsafe_code)]

pub mod command;
pub mod resp;

mod conn;

use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use csmv_native::{NativeConfig, NativeEngine, NativeRunError, NativeRunResult};

use conn::Connection;

/// Service configuration: engine shape plus the listener address.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine configuration (worker pool, commit servers, recovery,
    /// faults). `max_run` bounds the whole serving session.
    pub engine: NativeConfig,
    /// Number of keys; valid keys are `0..keys`.
    pub keys: u64,
    /// Validate the committed history against the opacity oracle at
    /// shutdown (forces `record_history`).
    pub check_history: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            engine: NativeConfig {
                // Serving sessions are long-lived; the engine watchdog is
                // a last-resort bound, not a bench duration.
                max_run: Duration::from_secs(3600),
                // Unbounded retry makes overload invisible; a budget
                // turns pathological contention into typed -RETRY
                // replies the client can act on.
                recovery: stm_core::RetryPolicy {
                    retry_budget: Some(64),
                    ..Default::default()
                },
                record_history: false,
                ..Default::default()
            },
            keys: 1024,
            check_history: false,
        }
    }
}

/// What a completed serving session hands back.
pub struct ServiceReport {
    /// The engine's aggregated run result (oracle-checked when
    /// `check_history` was set).
    pub result: NativeRunResult,
    /// Connections accepted over the session.
    pub connections: u64,
}

/// Errors out of [`serve`].
#[derive(Debug)]
pub enum ServiceError {
    /// The listener could not be bound.
    Bind(std::io::Error),
    /// The engine rejected its configuration, or the committed history
    /// failed the opacity oracle at shutdown.
    Engine(NativeRunError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Bind(e) => write!(f, "bind failed: {e}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Bind `addr`, serve connections until a client issues `SHUTDOWN` (or
/// `stop` is set externally), then drain the engine and return the
/// aggregated report.
///
/// `on_ready` is called with the bound local address before the first
/// accept — tests use it to learn an OS-assigned port.
pub fn serve<A: ToSocketAddrs>(
    cfg: &ServiceConfig,
    addr: A,
    stop: Arc<AtomicBool>,
    on_ready: impl FnOnce(std::net::SocketAddr),
) -> Result<ServiceReport, ServiceError> {
    let mut engine_cfg = cfg.engine.clone();
    if cfg.check_history {
        engine_cfg.record_history = true;
    }
    let listener = TcpListener::bind(addr).map_err(ServiceError::Bind)?;
    listener.set_nonblocking(true).map_err(ServiceError::Bind)?;
    if let Ok(local) = listener.local_addr() {
        on_ready(local);
    }

    let engine = Arc::new(
        NativeEngine::start(&engine_cfg, cfg.keys, |_| 0)
            .map_err(|e| ServiceError::Engine(NativeRunError::Config(e)))?,
    );

    let mut connections: u64 = 0;
    let mut handles = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                let _ = stream.set_nodelay(true);
                let conn = Connection::new(stream, engine.clone(), cfg.keys, stop.clone());
                handles.push(std::thread::spawn(move || conn.run()));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
    drop(listener);
    // Connections notice the stop flag on their next read slice; join
    // them all so every in-flight reply is written before the engine
    // drains.
    for h in handles {
        let _ = h.join();
    }
    let engine = match Arc::into_inner(engine) {
        Some(e) => e,
        None => {
            // Unreachable once every connection joined; refuse to guess.
            return Err(ServiceError::Engine(NativeRunError::Config(
                csmv_native::NativeConfigError::NoClients,
            )));
        }
    };
    let result = if cfg.check_history {
        engine.shutdown_checked().map_err(ServiceError::Engine)?
    } else {
        engine.shutdown()
    };
    Ok(ServiceReport {
        result,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resp::{parse_reply, Reply, ReplyOutcome};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// Pipeline `cmds` on `stream` and collect `want` in-order replies.
    fn session(stream: &mut TcpStream, cmds: &[&[&str]], want: usize) -> Vec<Reply> {
        let mut wire = Vec::new();
        for cmd in cmds {
            let args: Vec<&[u8]> = cmd.iter().map(|s| s.as_bytes()).collect();
            wire.extend(crate::resp::encode_command(&args));
        }
        stream.write_all(&wire).unwrap();
        let mut replies = Vec::new();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while replies.len() < want {
            match parse_reply(&buf) {
                ReplyOutcome::Reply(r, used) => {
                    buf.drain(..used);
                    replies.push(r);
                    continue;
                }
                ReplyOutcome::Incomplete => {}
                ReplyOutcome::Error(e) => panic!("bad reply stream: {e}"),
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed early: got {replies:?}");
            buf.extend_from_slice(&chunk[..n]);
        }
        replies
    }

    #[test]
    fn end_to_end_pipelined_session_with_multi_exec() {
        let cfg = ServiceConfig {
            engine: NativeConfig {
                client_threads: 2,
                server_threads: 1,
                ..ServiceConfig::default().engine
            },
            keys: 16,
            check_history: true,
        };
        let stop = Arc::new(AtomicBool::new(false));
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let cfg = cfg.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                serve(&cfg, "127.0.0.1:0", stop, |a| {
                    let _ = addr_tx.send(a);
                })
            })
        };
        let addr = addr_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        let mut c1 = TcpStream::connect(addr).unwrap();

        // Bare pipelined commands are independent concurrent transactions:
        // ordering between them is only guaranteed once the earlier reply
        // has arrived, so order-dependent steps wait between batches.
        let replies = session(&mut c1, &[&["PING"], &["SET", "3", "41"]], 2);
        assert_eq!(replies[0], Reply::Simple("PONG".into()));
        assert_eq!(replies[1], Reply::Simple("OK".into()));
        let replies = session(&mut c1, &[&["INCRBY", "3", "1"]], 1);
        assert_eq!(replies[0], Reply::Integer(42));
        let replies = session(&mut c1, &[&["GET", "3"]], 1);
        assert_eq!(replies[0], Reply::Bulk(b"42".to_vec()));

        // A MULTI block is one atomic transaction, pipelined in a single
        // write, with read-own-write inside the block.
        let replies = session(
            &mut c1,
            &[
                &["MULTI"],
                &["GET", "3"],
                &["INCRBY", "3", "-2"],
                &["SET", "4", "9"],
                &["EXEC"],
            ],
            5,
        );
        assert_eq!(replies[0], Reply::Simple("OK".into()));
        assert_eq!(replies[1], Reply::Simple("QUEUED".into()));
        assert_eq!(replies[2], Reply::Simple("QUEUED".into()));
        assert_eq!(replies[3], Reply::Simple("QUEUED".into()));
        assert_eq!(
            replies[4],
            Reply::Array(vec![
                Reply::Bulk(b"42".to_vec()),
                Reply::Integer(40),
                Reply::Simple("OK".into()),
            ])
        );

        // Misuse surfaces as immediate typed errors, never a hang.
        let replies = session(
            &mut c1,
            &[
                &["GET", "999"],
                &["EXEC"],
                &["MULTI"],
                &["BOGUS"],
                &["GET", "1"],
                &["EXEC"],
            ],
            6,
        );
        assert!(matches!(&replies[0], Reply::Error(e) if e.contains("out of range")));
        assert!(matches!(&replies[1], Reply::Error(e) if e.contains("EXEC without MULTI")));
        assert_eq!(replies[2], Reply::Simple("OK".into())); // MULTI
        assert!(matches!(&replies[3], Reply::Error(e) if e.contains("unknown command")));
        assert_eq!(replies[4], Reply::Simple("QUEUED".into()));
        assert!(matches!(&replies[5], Reply::Error(e) if e.starts_with("EXECABORT")));

        // A second connection sees the committed state, then stops the
        // service.
        let mut c2 = TcpStream::connect(addr).unwrap();
        let replies = session(&mut c2, &[&["GET", "4"], &["GET", "3"], &["SHUTDOWN"]], 3);
        assert_eq!(replies[0], Reply::Bulk(b"9".to_vec()));
        assert_eq!(replies[1], Reply::Bulk(b"40".to_vec()));
        assert_eq!(replies[2], Reply::Simple("OK".into()));

        let report = server.join().unwrap().expect("serve failed");
        assert_eq!(report.connections, 2);
        // 3 update txs (SET, INCRBY, the EXEC block) + 3 read-only GETs.
        assert_eq!(report.result.stats.update_commits, 3);
        assert_eq!(report.result.stats.rot_commits, 3);
        assert_eq!(report.result.stats.failed, 0);
        assert_eq!(report.result.final_state.get(&3), Some(&40));
        assert_eq!(report.result.final_state.get(&4), Some(&9));
    }
}
