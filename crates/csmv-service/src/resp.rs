//! RESP (REdis Serialization Protocol) framing: an incremental,
//! never-panicking parser for client command frames and server replies,
//! plus the matching encoders.
//!
//! The parser is pure over a byte slice and reports how many bytes it
//! consumed, so callers own the buffering strategy: append whatever the
//! socket produced, parse frames off the front, drain the consumed
//! prefix. Partial input is `Incomplete` (never an error), malformed
//! input is a terminal `Error` (the connection must close), and both
//! array frames (`*2\r\n$3\r\nGET\r\n$1\r\n7\r\n`) and inline commands
//! (`GET 7\r\n`) are accepted, as in Redis.

/// Largest accepted bulk-string payload. Anything bigger is a protocol
/// error, not an allocation request — the bound is what keeps a hostile
/// peer from turning a length prefix into unbounded memory growth.
pub const MAX_BULK: usize = 1 << 20;
/// Largest accepted command arity.
pub const MAX_ARRAY: usize = 1 << 10;
/// Longest accepted inline command line (terminator included).
pub const MAX_INLINE: usize = 1 << 16;
/// Deepest accepted reply nesting (arrays of arrays).
const MAX_DEPTH: usize = 8;

/// Result of parsing one command frame off the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A complete command (argv of byte strings) consuming this many
    /// bytes. An empty argv (blank inline line) should be skipped.
    Frame(Vec<Vec<u8>>, usize),
    /// More bytes are needed.
    Incomplete,
    /// The stream is not valid RESP; the connection must close.
    Error(String),
}

/// One parsed server reply (what a client of the service sees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK\r\n`-style simple string.
    Simple(String),
    /// `-ERR ...\r\n` error string.
    Error(String),
    /// `:42\r\n` integer.
    Integer(i64),
    /// `$n\r\n...\r\n` bulk string.
    Bulk(Vec<u8>),
    /// `$-1\r\n` null bulk.
    Nil,
    /// `*n\r\n...` array of replies.
    Array(Vec<Reply>),
}

/// Result of parsing one reply off the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyOutcome {
    /// A complete reply consuming this many bytes.
    Reply(Reply, usize),
    /// More bytes are needed.
    Incomplete,
    /// The stream is not valid RESP.
    Error(String),
}

/// Find the first CRLF at or after `from`; `None` if the buffer ends
/// before one appears.
fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < buf.len() {
        if buf[i] == b'\r' && buf[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Parse a decimal integer line ending at `end` (exclusive). Accepts an
/// optional leading `-`; rejects empty digits, junk, and overflow.
fn parse_int(digits: &[u8]) -> Result<i64, String> {
    let (neg, digits) = match digits.first() {
        Some(b'-') => (true, &digits[1..]),
        _ => (false, digits),
    };
    if digits.is_empty() || digits.len() > 18 {
        return Err("bad integer length".to_string());
    }
    let mut v: i64 = 0;
    for &d in digits {
        if !d.is_ascii_digit() {
            return Err("bad integer digit".to_string());
        }
        v = v * 10 + (d - b'0') as i64;
    }
    Ok(if neg { -v } else { v })
}

/// Parse one `<type byte><int>\r\n` header line starting at `pos`.
/// Returns `(value, next_pos)`.
fn parse_header(buf: &[u8], pos: usize) -> Result<Option<(i64, usize)>, String> {
    match find_crlf(buf, pos + 1) {
        None => {
            // Unterminated header: bound how long we will wait for it.
            if buf.len() - pos > 32 {
                Err("unterminated header line".to_string())
            } else {
                Ok(None)
            }
        }
        Some(at) => {
            let v = parse_int(&buf[pos + 1..at])?;
            Ok(Some((v, at + 2)))
        }
    }
}

/// Parse one command frame (array-of-bulks or inline) off the front of
/// `buf`. Never panics on any input.
pub fn parse_frame(buf: &[u8]) -> ParseOutcome {
    if buf.is_empty() {
        return ParseOutcome::Incomplete;
    }
    if buf[0] != b'*' {
        return parse_inline(buf);
    }
    let (n, mut pos) = match parse_header(buf, 0) {
        Err(e) => return ParseOutcome::Error(e),
        Ok(None) => return ParseOutcome::Incomplete,
        Ok(Some((n, pos))) => (n, pos),
    };
    if n < 0 || n as usize > MAX_ARRAY {
        return ParseOutcome::Error(format!("bad array length {n}"));
    }
    let mut argv = Vec::with_capacity(n as usize);
    for _ in 0..n {
        if pos >= buf.len() {
            return ParseOutcome::Incomplete;
        }
        if buf[pos] != b'$' {
            return ParseOutcome::Error(format!(
                "expected bulk string, got type byte {:?}",
                buf[pos] as char
            ));
        }
        let (len, body) = match parse_header(buf, pos) {
            Err(e) => return ParseOutcome::Error(e),
            Ok(None) => return ParseOutcome::Incomplete,
            Ok(Some(v)) => v,
        };
        if len < 0 || len as usize > MAX_BULK {
            return ParseOutcome::Error(format!("bad bulk length {len}"));
        }
        let len = len as usize;
        if buf.len() < body + len + 2 {
            return ParseOutcome::Incomplete;
        }
        if &buf[body + len..body + len + 2] != b"\r\n" {
            return ParseOutcome::Error("bulk string not CRLF-terminated".to_string());
        }
        argv.push(buf[body..body + len].to_vec());
        pos = body + len + 2;
    }
    ParseOutcome::Frame(argv, pos)
}

/// Inline commands: a single line, whitespace-separated words. A blank
/// line parses as an empty argv (callers skip it), matching Redis.
fn parse_inline(buf: &[u8]) -> ParseOutcome {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        return if buf.len() > MAX_INLINE {
            ParseOutcome::Error("inline command too long".to_string())
        } else {
            ParseOutcome::Incomplete
        };
    };
    if nl + 1 > MAX_INLINE {
        return ParseOutcome::Error("inline command too long".to_string());
    }
    let line = &buf[..nl];
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    let argv: Vec<Vec<u8>> = line
        .split(|&b| b == b' ' || b == b'\t')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_vec())
        .collect();
    ParseOutcome::Frame(argv, nl + 1)
}

/// Parse one reply off the front of `buf`. Never panics on any input.
pub fn parse_reply(buf: &[u8]) -> ReplyOutcome {
    parse_reply_at(buf, 0, 0)
}

fn parse_reply_at(buf: &[u8], pos: usize, depth: usize) -> ReplyOutcome {
    if depth > MAX_DEPTH {
        return ReplyOutcome::Error("reply nesting too deep".to_string());
    }
    let Some(&kind) = buf.get(pos) else {
        return ReplyOutcome::Incomplete;
    };
    match kind {
        b'+' | b'-' => {
            let Some(at) = find_crlf(buf, pos + 1) else {
                return if buf.len() - pos > MAX_INLINE {
                    ReplyOutcome::Error("unterminated simple string".to_string())
                } else {
                    ReplyOutcome::Incomplete
                };
            };
            let text = String::from_utf8_lossy(&buf[pos + 1..at]).into_owned();
            let reply = if kind == b'+' {
                Reply::Simple(text)
            } else {
                Reply::Error(text)
            };
            ReplyOutcome::Reply(reply, at + 2 - pos)
        }
        b':' => match parse_header(buf, pos) {
            Err(e) => ReplyOutcome::Error(e),
            Ok(None) => ReplyOutcome::Incomplete,
            Ok(Some((v, next))) => ReplyOutcome::Reply(Reply::Integer(v), next - pos),
        },
        b'$' => {
            let (len, body) = match parse_header(buf, pos) {
                Err(e) => return ReplyOutcome::Error(e),
                Ok(None) => return ReplyOutcome::Incomplete,
                Ok(Some(v)) => v,
            };
            if len == -1 {
                return ReplyOutcome::Reply(Reply::Nil, body - pos);
            }
            if len < 0 || len as usize > MAX_BULK {
                return ReplyOutcome::Error(format!("bad bulk length {len}"));
            }
            let len = len as usize;
            if buf.len() < body + len + 2 {
                return ReplyOutcome::Incomplete;
            }
            if &buf[body + len..body + len + 2] != b"\r\n" {
                return ReplyOutcome::Error("bulk reply not CRLF-terminated".to_string());
            }
            ReplyOutcome::Reply(
                Reply::Bulk(buf[body..body + len].to_vec()),
                body + len + 2 - pos,
            )
        }
        b'*' => {
            let (n, mut at) = match parse_header(buf, pos) {
                Err(e) => return ReplyOutcome::Error(e),
                Ok(None) => return ReplyOutcome::Incomplete,
                Ok(Some(v)) => v,
            };
            if n < 0 || n as usize > MAX_ARRAY {
                return ReplyOutcome::Error(format!("bad array length {n}"));
            }
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match parse_reply_at(buf, at, depth + 1) {
                    ReplyOutcome::Reply(r, used) => {
                        items.push(r);
                        at += used;
                    }
                    other => return other,
                }
            }
            ReplyOutcome::Reply(Reply::Array(items), at - pos)
        }
        other => ReplyOutcome::Error(format!("unknown reply type byte {:?}", other as char)),
    }
}

/// Encode a command as an array of bulk strings (the canonical client
/// framing; what `parse_frame` round-trips).
pub fn encode_command<A: AsRef<[u8]>>(args: &[A]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(format!("*{}\r\n", args.len()).as_bytes());
    for a in args {
        let a = a.as_ref();
        out.extend_from_slice(format!("${}\r\n", a.len()).as_bytes());
        out.extend_from_slice(a);
        out.extend_from_slice(b"\r\n");
    }
    out
}

/// `+text\r\n`
pub fn simple(text: &str) -> Vec<u8> {
    format!("+{text}\r\n").into_bytes()
}

/// `-text\r\n`
pub fn error(text: &str) -> Vec<u8> {
    format!("-{text}\r\n").into_bytes()
}

/// `:value\r\n`
pub fn integer(value: i64) -> Vec<u8> {
    format!(":{value}\r\n").into_bytes()
}

/// `$len\r\nbody\r\n`
pub fn bulk(body: &[u8]) -> Vec<u8> {
    let mut out = format!("${}\r\n", body.len()).into_bytes();
    out.extend_from_slice(body);
    out.extend_from_slice(b"\r\n");
    out
}

/// `*len\r\n` (the element encodings follow).
pub fn array_header(len: usize) -> Vec<u8> {
    format!("*{len}\r\n").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_frame_round_trips() {
        let wire = encode_command(&[b"SET".as_ref(), b"7", b"42"]);
        match parse_frame(&wire) {
            ParseOutcome::Frame(argv, used) => {
                assert_eq!(used, wire.len());
                assert_eq!(argv, vec![b"SET".to_vec(), b"7".to_vec(), b"42".to_vec()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn partial_frames_are_incomplete_at_every_split() {
        let wire = encode_command(&[b"INCRBY".as_ref(), b"3", b"-5"]);
        for cut in 0..wire.len() {
            match parse_frame(&wire[..cut]) {
                ParseOutcome::Incomplete => {}
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn inline_commands_parse_and_blank_lines_are_empty() {
        match parse_frame(b"GET 12\r\nleftover") {
            ParseOutcome::Frame(argv, used) => {
                assert_eq!(argv, vec![b"GET".to_vec(), b"12".to_vec()]);
                assert_eq!(used, 8);
            }
            other => panic!("{other:?}"),
        }
        match parse_frame(b"\r\n") {
            ParseOutcome::Frame(argv, 2) => assert!(argv.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hostile_lengths_are_errors_not_allocations() {
        assert!(matches!(
            parse_frame(b"*99999999\r\n"),
            ParseOutcome::Error(_)
        ));
        assert!(matches!(
            parse_frame(b"*1\r\n$99999999\r\n"),
            ParseOutcome::Error(_)
        ));
        assert!(matches!(
            parse_frame(b"*1\r\n:5\r\n"),
            ParseOutcome::Error(_)
        ));
        assert!(matches!(
            parse_frame(b"*1\r\n$3\r\nabcXX"),
            ParseOutcome::Error(_)
        ));
    }

    #[test]
    fn replies_round_trip() {
        let cases: Vec<(Vec<u8>, Reply)> = vec![
            (simple("OK"), Reply::Simple("OK".into())),
            (
                error("RETRY server_timeout"),
                Reply::Error("RETRY server_timeout".into()),
            ),
            (integer(-7), Reply::Integer(-7)),
            (bulk(b"42"), Reply::Bulk(b"42".to_vec())),
            (b"$-1\r\n".to_vec(), Reply::Nil),
        ];
        for (wire, want) in cases {
            match parse_reply(&wire) {
                ReplyOutcome::Reply(got, used) => {
                    assert_eq!(got, want);
                    assert_eq!(used, wire.len());
                }
                other => panic!("{other:?}"),
            }
        }
        let mut arr = array_header(2);
        arr.extend(simple("OK"));
        arr.extend(integer(3));
        match parse_reply(&arr) {
            ReplyOutcome::Reply(Reply::Array(items), used) => {
                assert_eq!(used, arr.len());
                assert_eq!(items, vec![Reply::Simple("OK".into()), Reply::Integer(3)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipelined_frames_parse_one_at_a_time() {
        let mut wire = encode_command(&[b"GET".as_ref(), b"1"]);
        wire.extend(encode_command(&[b"SET".as_ref(), b"2", b"9"]));
        let ParseOutcome::Frame(a, used) = parse_frame(&wire) else {
            panic!()
        };
        assert_eq!(a[0], b"GET");
        let ParseOutcome::Frame(b, used2) = parse_frame(&wire[used..]) else {
            panic!()
        };
        assert_eq!(b[0], b"SET");
        assert_eq!(used + used2, wire.len());
    }
}
