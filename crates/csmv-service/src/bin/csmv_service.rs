//! The `csmv-service` binary: bind a TCP address and serve RESP traffic
//! through the native CSMV engine until a client issues `SHUTDOWN`.
//!
//! ```text
//! csmv-service --addr 127.0.0.1:7379 --keys 1024 --clients 4 --check-history
//! ```
//!
//! Fault flags arm the PR 4 deterministic fault plan *inside* the engine
//! (request/response drops, a server kill), which is how CI chaos-tests
//! the full network → engine → recovery path end-to-end. Arming any
//! fault auto-arms the recovery policy defaults the engine requires.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use csmv_native::{KillServer, NativeFaultPlan, NativeFaultSpec};
use csmv_service::{serve, ServiceConfig};

const USAGE: &str = "\
csmv-service — RESP front-end for the native CSMV engine

USAGE:
  csmv-service [--addr HOST:PORT] [--keys N] [--clients N] [--servers N]
               [--max-batch N] [--channel-depth N] [--retry-budget N]
               [--versions-per-box N] [--reader-slots N]
               [--resp-timeout-us N] [--max-send-attempts N]
               [--max-run-secs N] [--check-history]
               [--fault-drop-req-pct P] [--fault-drop-resp-pct P]
               [--fault-kill-server SID@BATCH] [--fault-seed N]

Defaults: --addr 127.0.0.1:7379 --keys 1024 --clients 4 --servers 2
          --retry-budget 64 --max-run-secs 3600";

struct Args {
    addr: String,
    cfg: ServiceConfig,
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    let v = v.strip_prefix("0x").map_or_else(
        || v.parse::<T>().map_err(|_| ()),
        |hex| {
            u64::from_str_radix(hex, 16)
                .map_err(|_| ())
                .and_then(|n| n.to_string().parse::<T>().map_err(|_| ()))
        },
    );
    v.map_err(|_| format!("{flag}: not a number"))
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _bin = argv.next();
    let mut args = Args {
        addr: "127.0.0.1:7379".to_string(),
        cfg: ServiceConfig::default(),
    };
    let mut spec = NativeFaultSpec::default();
    let mut fault_seed: u64 = 1;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--addr" => args.addr = argv.next().ok_or("--addr needs a value")?,
            "--keys" => args.cfg.keys = parse_num("--keys", argv.next())?,
            "--clients" => args.cfg.engine.client_threads = parse_num("--clients", argv.next())?,
            "--servers" => args.cfg.engine.server_threads = parse_num("--servers", argv.next())?,
            "--max-batch" => args.cfg.engine.max_batch = parse_num("--max-batch", argv.next())?,
            "--channel-depth" => {
                args.cfg.engine.channel_depth = parse_num("--channel-depth", argv.next())?
            }
            "--versions-per-box" => {
                args.cfg.engine.versions_per_box = parse_num("--versions-per-box", argv.next())?
            }
            "--reader-slots" => {
                args.cfg.engine.reader_slots = parse_num("--reader-slots", argv.next())?
            }
            "--retry-budget" => {
                args.cfg.engine.recovery.retry_budget =
                    Some(parse_num("--retry-budget", argv.next())?)
            }
            "--resp-timeout-us" => {
                args.cfg.engine.recovery.resp_timeout =
                    Some(parse_num("--resp-timeout-us", argv.next())?)
            }
            "--max-send-attempts" => {
                args.cfg.engine.recovery.max_send_attempts =
                    parse_num("--max-send-attempts", argv.next())?
            }
            "--max-run-secs" => {
                args.cfg.engine.max_run =
                    Duration::from_secs(parse_num("--max-run-secs", argv.next())?)
            }
            "--check-history" => args.cfg.check_history = true,
            "--fault-drop-req-pct" => {
                spec.drop_req_pct = parse_num("--fault-drop-req-pct", argv.next())?
            }
            "--fault-drop-resp-pct" => {
                spec.drop_resp_pct = parse_num("--fault-drop-resp-pct", argv.next())?
            }
            "--fault-kill-server" => {
                let v = argv.next().ok_or("--fault-kill-server needs SID@BATCH")?;
                let (sid, batch) = v
                    .split_once('@')
                    .ok_or("--fault-kill-server wants SID@BATCH")?;
                spec.kill_server = Some(KillServer {
                    server: sid.parse().map_err(|_| "bad SID")?,
                    after_batches: batch.parse().map_err(|_| "bad BATCH")?,
                });
            }
            "--fault-seed" => fault_seed = parse_num("--fault-seed", argv.next())?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if spec.armed() {
        // The engine refuses armed faults without an armed recovery
        // policy; fill in serving-grade defaults unless overridden.
        let rec = &mut args.cfg.engine.recovery;
        if rec.resp_timeout.is_none() {
            rec.resp_timeout = Some(5_000);
        }
        if rec.max_send_attempts < 4 {
            rec.max_send_attempts = 8;
        }
        if rec.backoff_base == 0 {
            rec.backoff_base = 64;
        }
        if rec.jitter_seed == 0 {
            rec.jitter_seed = fault_seed ^ 0x5EED;
        }
        args.cfg.engine.faults = Some(NativeFaultPlan::new(fault_seed, spec));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let report = serve(&args.cfg, &args.addr, stop, |local| {
        println!("csmv-service: listening on {local}");
    });
    match report {
        Ok(r) => {
            let s = &r.result.stats;
            println!(
                "csmv-service: served {} connections: commits={} aborts={} failed={} gts={}",
                r.connections,
                s.commits(),
                s.aborts(),
                s.failed,
                r.result.gts
            );
            let by_reason: Vec<String> = stm_core::AbortReason::ALL
                .iter()
                .filter_map(|&reason| {
                    let n = r.result.metrics.aborts.count(reason);
                    (n > 0).then(|| format!("{}={n}", reason.key()))
                })
                .collect();
            if !by_reason.is_empty() {
                println!("csmv-service: aborts by reason: {}", by_reason.join(" "));
            }
            // Version-GC and memory-footprint summary, one greppable line
            // (scripts/soak.sh asserts the plateau off these fields).
            let gc = &r.result.metrics.gc;
            let footprint = r
                .result
                .metrics
                .footprint
                .samples()
                .last()
                .map_or(0, |s| s.value);
            println!(
                "csmv-service: gc: footprint_bytes={footprint} max_version_list_len={} \
                 reclaimed={} spilled={} pruned={} pinned_commits={}",
                gc.max_version_list_len,
                gc.versions_reclaimed,
                gc.versions_spilled,
                gc.spill_pruned,
                gc.pinned_commits
            );
            if args.cfg.check_history {
                println!(
                    "csmv-service: history: ok ({} records)",
                    r.result.records.len()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("csmv-service: {e}");
            ExitCode::FAILURE
        }
    }
}
