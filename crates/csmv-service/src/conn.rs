//! One client connection: a reader half that parses frames, tracks
//! `MULTI` state and submits transactions, and a writer half that sends
//! replies strictly in request order.
//!
//! Pipelining falls out of the split: the reader keeps accepting and
//! submitting requests while earlier ones are still in flight, and the
//! writer blocks on each submission's completion in turn. The reply
//! queue between the halves is bounded, so one connection can hold at
//! most [`PIPELINE_DEPTH`] replies outstanding — past that the reader
//! stops draining the socket and TCP pushes back on the client.
//!
//! Nothing in `impl Connection` may panic: the `xtask`
//! `no-panic-in-server-path` lint covers this file.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use csmv_native::{Completion, NativeEngine, SubmitError};

use crate::command::{Command, KvOp, KvResult, KvTx, ResultSink};
use crate::resp;

/// Replies one connection may have outstanding before the reader stops
/// draining its socket.
pub const PIPELINE_DEPTH: usize = 128;

/// How often a blocked socket read wakes up to notice service shutdown.
const READ_SLICE: Duration = Duration::from_millis(200);

/// How each committed op encodes into its reply slot.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    /// `GET` → bulk string.
    Get,
    /// `SET` → `+OK`.
    Set,
    /// `INCRBY` → integer.
    Incr,
}

/// One in-order reply slot handed from reader to writer.
enum Slot {
    /// An immediate, already-encoded reply.
    Ready(Vec<u8>),
    /// A submitted transaction: encode once its completion arrives.
    Tx {
        done: Receiver<Completion>,
        results: ResultSink,
        ops: Vec<OpKind>,
        /// Wrap the op replies in an `EXEC` array.
        exec: bool,
    },
}

/// Reader-side `MULTI` bookkeeping.
struct MultiState {
    ops: Vec<KvOp>,
    kinds: Vec<OpKind>,
    /// A queued command failed to parse; `EXEC` must refuse the block.
    dirty: bool,
}

pub(crate) struct Connection {
    stream: TcpStream,
    engine: Arc<NativeEngine>,
    /// Valid keys are `0..keys`.
    keys: u64,
    shutdown: Arc<AtomicBool>,
}

impl Connection {
    pub(crate) fn new(
        stream: TcpStream,
        engine: Arc<NativeEngine>,
        keys: u64,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        Self {
            stream,
            engine,
            keys,
            shutdown,
        }
    }

    /// Serve the connection to completion (client hangup, protocol
    /// error, or service shutdown).
    pub(crate) fn run(mut self) {
        if self.stream.set_read_timeout(Some(READ_SLICE)).is_err() {
            return;
        }
        let Ok(wstream) = self.stream.try_clone() else {
            return;
        };
        let (slot_tx, slot_rx) = mpsc::sync_channel::<Slot>(PIPELINE_DEPTH);
        std::thread::scope(|s| {
            s.spawn(move || write_loop(wstream, slot_rx));
            self.read_loop(&slot_tx);
            drop(slot_tx);
        });
    }

    fn read_loop(&mut self, slots: &SyncSender<Slot>) {
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut multi: Option<MultiState> = None;
        loop {
            // Drain complete frames before reading more bytes.
            loop {
                match resp::parse_frame(&buf) {
                    resp::ParseOutcome::Incomplete => break,
                    resp::ParseOutcome::Error(e) => {
                        let _ = slots.send(Slot::Ready(resp::error(&format!("ERR protocol: {e}"))));
                        return;
                    }
                    resp::ParseOutcome::Frame(argv, used) => {
                        buf.drain(..used);
                        if argv.is_empty() {
                            continue;
                        }
                        match self.dispatch(&argv, &mut multi) {
                            Dispatch::Reply(slot) => {
                                if slots.send(slot).is_err() {
                                    return; // writer gone (socket died)
                                }
                            }
                            Dispatch::Close(slot) => {
                                let _ = slots.send(slot);
                                return;
                            }
                        }
                    }
                }
            }
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return, // EOF
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn dispatch(&self, argv: &[Vec<u8>], multi: &mut Option<MultiState>) -> Dispatch {
        let cmd = match Command::parse(argv) {
            Ok(cmd) => cmd,
            Err(e) => {
                // Inside MULTI a bad command poisons the block, as in
                // Redis: EXEC will refuse it.
                if let Some(m) = multi.as_mut() {
                    m.dirty = true;
                }
                return Dispatch::Reply(Slot::Ready(resp::error(&e)));
            }
        };
        match cmd {
            Command::Ping => Dispatch::Reply(Slot::Ready(resp::simple("PONG"))),
            Command::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Dispatch::Close(Slot::Ready(resp::simple("OK")))
            }
            Command::Multi => {
                if multi.is_some() {
                    Dispatch::Reply(Slot::Ready(resp::error(
                        "ERR MULTI calls can not be nested",
                    )))
                } else {
                    *multi = Some(MultiState {
                        ops: Vec::new(),
                        kinds: Vec::new(),
                        dirty: false,
                    });
                    Dispatch::Reply(Slot::Ready(resp::simple("OK")))
                }
            }
            Command::Discard => match multi.take() {
                Some(_) => Dispatch::Reply(Slot::Ready(resp::simple("OK"))),
                None => Dispatch::Reply(Slot::Ready(resp::error("ERR DISCARD without MULTI"))),
            },
            Command::Exec => match multi.take() {
                None => Dispatch::Reply(Slot::Ready(resp::error("ERR EXEC without MULTI"))),
                Some(m) if m.dirty => Dispatch::Reply(Slot::Ready(resp::error(
                    "EXECABORT Transaction discarded because of previous errors.",
                ))),
                Some(m) if m.ops.is_empty() => Dispatch::Reply(Slot::Ready(resp::array_header(0))),
                Some(m) => Dispatch::Reply(self.submit(m.ops, m.kinds, true)),
            },
            Command::Get(k) | Command::Set(k, _) | Command::IncrBy(k, _) if k >= self.keys => {
                if let Some(m) = multi.as_mut() {
                    m.dirty = true;
                }
                Dispatch::Reply(Slot::Ready(resp::error(&format!(
                    "ERR key {k} out of range (keys 0..{})",
                    self.keys
                ))))
            }
            Command::Get(k) => self.queue_or_submit(multi, KvOp::Get(k), OpKind::Get),
            Command::Set(k, v) => self.queue_or_submit(multi, KvOp::Set(k, v), OpKind::Set),
            Command::IncrBy(k, d) => self.queue_or_submit(multi, KvOp::IncrBy(k, d), OpKind::Incr),
        }
    }

    fn queue_or_submit(&self, multi: &mut Option<MultiState>, op: KvOp, kind: OpKind) -> Dispatch {
        if let Some(m) = multi.as_mut() {
            m.ops.push(op);
            m.kinds.push(kind);
            Dispatch::Reply(Slot::Ready(resp::simple("QUEUED")))
        } else {
            Dispatch::Reply(self.submit(vec![op], vec![kind], false))
        }
    }

    /// Hand a transaction to the engine; backpressure surfaces here as a
    /// `-BUSY` reply instead of queue growth.
    fn submit(&self, ops: Vec<KvOp>, kinds: Vec<OpKind>, exec: bool) -> Slot {
        let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let tx = Box::new(KvTx::new(ops, results.clone()));
        let (done_tx, done_rx) = mpsc::channel();
        match self.engine.try_submit(tx, done_tx) {
            Ok(()) => Slot::Tx {
                done: done_rx,
                results,
                ops: kinds,
                exec,
            },
            Err(SubmitError::Busy(_)) => {
                Slot::Ready(resp::error("BUSY engine queue full, retry later"))
            }
            Err(SubmitError::Closed(_)) => Slot::Ready(resp::error("ERR engine is shut down")),
        }
    }
}

enum Dispatch {
    Reply(Slot),
    Close(Slot),
}

/// Writer half: encode and send replies strictly in request order.
fn write_loop(mut stream: TcpStream, slots: Receiver<Slot>) {
    for slot in slots {
        let bytes = match slot {
            Slot::Ready(b) => b,
            Slot::Tx {
                done,
                results,
                ops,
                exec,
            } => match done.recv() {
                Ok(c) => encode_outcome(&c.outcome, &results, &ops, exec),
                // The engine dropped the job without a completion (it can
                // only happen past the run deadline, mid-teardown).
                Err(_) => resp::error("ERR engine is shut down"),
            },
        };
        if stream.write_all(&bytes).is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

/// Encode one terminal transaction outcome as its RESP reply. The error
/// arm is **total** over [`stm_core::metrics::AbortReason`]: every reason
/// (including additions like `snapshot_too_old`) is carried as a typed
/// `-RETRY <key>` reply through the same generic path — see the taxonomy
/// test below.
fn encode_outcome(
    outcome: &Result<(), stm_core::metrics::AbortReason>,
    results: &ResultSink,
    ops: &[OpKind],
    exec: bool,
) -> Vec<u8> {
    match outcome {
        // Typed retry error carrying the abort-reason taxonomy key.
        Err(reason) => resp::error(&format!("RETRY {}", reason.key())),
        Ok(()) => {
            let vals = results.lock().unwrap_or_else(|e| e.into_inner());
            let mut out = if exec {
                resp::array_header(ops.len())
            } else {
                Vec::new()
            };
            for (i, kind) in ops.iter().enumerate() {
                let val = vals.get(i).copied();
                out.extend(match (kind, val) {
                    (OpKind::Set, _) => resp::simple("OK"),
                    (OpKind::Get, Some(KvResult::Value(v))) => resp::bulk(v.to_string().as_bytes()),
                    (OpKind::Incr, Some(KvResult::Value(v))) => resp::integer(v as i64),
                    // A committed tx always recorded one result per op;
                    // anything else is an internal invariant break.
                    _ => resp::error("ERR internal: missing op result"),
                });
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::metrics::AbortReason;

    /// The `-RETRY <reason>` reply taxonomy is total: every abort reason —
    /// terminal and retriable alike — encodes to a typed error carrying a
    /// distinct, machine-parseable key. A new `AbortReason` variant cannot
    /// silently fall outside the wire taxonomy.
    #[test]
    fn retry_reply_taxonomy_is_total_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for &reason in &AbortReason::ALL {
            let key = reason.key();
            assert!(!key.is_empty(), "{reason:?} must have a taxonomy key");
            assert!(
                key.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{reason:?} key {key:?} must be a lowercase identifier"
            );
            assert!(seen.insert(key), "{reason:?} key {key:?} is not distinct");
            let results: ResultSink = Default::default();
            let bytes = encode_outcome(&Err(reason), &results, &[], true);
            let reply = String::from_utf8(bytes).expect("RESP errors are UTF-8");
            assert_eq!(
                reply,
                format!("-RETRY {key}\r\n"),
                "{reason:?} must surface as a typed RETRY error"
            );
        }
    }

    /// The reason this PR adds rides the same path as the rest.
    #[test]
    fn snapshot_too_old_is_carried_on_the_wire() {
        let results: ResultSink = Default::default();
        let bytes = encode_outcome(&Err(AbortReason::SnapshotTooOld), &results, &[], false);
        assert_eq!(bytes, b"-RETRY snapshot_too_old\r\n");
    }
}
