//! Fuzz-style property tests for the RESP framing layer: the parser
//! must never panic on any byte stream, must treat every prefix of a
//! valid frame as `Incomplete` (split reads), must round-trip every
//! well-formed command through arbitrary coalescing (pipelined reads),
//! and the connection-level MULTI state machine must answer nested /
//! orphaned control commands with errors, never silence.

use csmv_service::resp::{self, parse_frame, parse_reply, ParseOutcome, Reply, ReplyOutcome};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// An arbitrary well-formed command argv (possibly empty words, binary
/// bytes — the framing layer doesn't care about command semantics).
fn arb_argv() -> impl Strategy<Value = Vec<Vec<u8>>> {
    pvec(pvec(0u8..=255, 0usize..24), 1usize..6)
}

/// A pipelined wire image of several commands plus the frame boundaries.
fn encode_all(cmds: &[Vec<Vec<u8>>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for argv in cmds {
        wire.extend(resp::encode_command(argv));
    }
    wire
}

/// Parse as many frames as possible from `buf`, feeding `chunk`-sized
/// slices as a socket would.
fn parse_chunked(wire: &[u8], chunk: usize) -> Vec<Vec<Vec<u8>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut fed = 0;
    loop {
        loop {
            match parse_frame(&buf) {
                ParseOutcome::Frame(argv, used) => {
                    buf.drain(..used);
                    out.push(argv);
                }
                ParseOutcome::Incomplete => break,
                ParseOutcome::Error(e) => panic!("well-formed stream errored: {e}"),
            }
        }
        if fed >= wire.len() {
            return out;
        }
        let take = chunk.max(1).min(wire.len() - fed);
        buf.extend_from_slice(&wire[fed..fed + take]);
        fed += take;
    }
}

proptest! {
    /// The parser never panics and never over-consumes, whatever bytes
    /// arrive.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in pvec(0u8..=255, 0usize..256)) {
        match parse_frame(&bytes) {
            ParseOutcome::Frame(_, used) => prop_assert!(used <= bytes.len()),
            ParseOutcome::Incomplete | ParseOutcome::Error(_) => {}
        }
        match parse_reply(&bytes) {
            ReplyOutcome::Reply(_, used) => prop_assert!(used <= bytes.len()),
            ReplyOutcome::Incomplete | ReplyOutcome::Error(_) => {}
        }
    }

    /// Every proper prefix of a well-formed frame is `Incomplete` —
    /// split reads can never produce an error or a short frame.
    #[test]
    fn every_split_of_a_frame_is_incomplete(argv in arb_argv()) {
        let wire = resp::encode_command(&argv);
        for cut in 0..wire.len() {
            prop_assert_eq!(
                parse_frame(&wire[..cut]),
                ParseOutcome::Incomplete,
                "cut at {}", cut
            );
        }
        match parse_frame(&wire) {
            ParseOutcome::Frame(got, used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(got, argv);
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }

    /// Pipelined commands round-trip through arbitrary read coalescing:
    /// any chunk size recovers exactly the original frame sequence.
    #[test]
    fn pipelined_streams_round_trip_at_any_chunking(
        cmds in pvec(arb_argv(), 1usize..5),
        chunk in 1usize..64,
    ) {
        let wire = encode_all(&cmds);
        let got = parse_chunked(&wire, chunk);
        prop_assert_eq!(got, cmds);
    }

    /// Trailing garbage after well-formed frames never corrupts the
    /// frames already parsed.
    #[test]
    fn garbage_after_frames_does_not_corrupt_them(
        cmds in pvec(arb_argv(), 1usize..4),
        garbage in pvec(0u8..=255, 0usize..32),
    ) {
        let mut wire = encode_all(&cmds);
        wire.extend_from_slice(&garbage);
        let mut pos = 0;
        for want in &cmds {
            match parse_frame(&wire[pos..]) {
                ParseOutcome::Frame(got, used) => {
                    prop_assert_eq!(&got, want);
                    pos += used;
                }
                other => {
                    prop_assert!(false, "{:?}", other);
                }
            }
        }
    }

    /// Replies round-trip, including nested EXEC arrays.
    #[test]
    fn encoded_replies_round_trip(values in pvec(0u64..1_000_000, 1usize..6)) {
        let mut wire = resp::array_header(values.len());
        for (i, v) in values.iter().enumerate() {
            // Alternate encodings the service actually emits.
            wire.extend(match i % 3 {
                0 => resp::bulk(v.to_string().as_bytes()),
                1 => resp::integer(*v as i64),
                _ => resp::simple("OK"),
            });
        }
        match parse_reply(&wire) {
            ReplyOutcome::Reply(Reply::Array(items), used) => {
                prop_assert_eq!(used, wire.len());
                prop_assert_eq!(items.len(), values.len());
            }
            other => prop_assert!(false, "{:?}", other),
        }
    }
}

/// Nested/orphaned MULTI misuse over a live connection: every control
/// error is a typed reply, and the connection keeps serving afterwards.
#[test]
fn multi_misuse_over_a_live_connection_yields_typed_errors() {
    use csmv_service::{serve, ServiceConfig};
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let cfg = ServiceConfig {
        keys: 8,
        ..Default::default()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            serve(&cfg, "127.0.0.1:0", stop, |a| {
                let _ = addr_tx.send(a);
            })
        })
    };
    let addr = addr_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .unwrap();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();

    // MULTI, nested MULTI (error), DISCARD, DISCARD again (error),
    // EXEC with nothing open (error), then a normal command — pipelined
    // partly as inline commands to cross framing styles.
    let mut wire = Vec::new();
    wire.extend(resp::encode_command(&[b"MULTI".as_ref()]));
    wire.extend_from_slice(b"MULTI\r\n");
    wire.extend(resp::encode_command(&[b"DISCARD".as_ref()]));
    wire.extend_from_slice(b"DISCARD\r\n");
    wire.extend(resp::encode_command(&[b"EXEC".as_ref()]));
    wire.extend_from_slice(b"SET 2 5\r\n");
    wire.extend(resp::encode_command(&[b"SHUTDOWN".as_ref()]));
    stream.write_all(&wire).unwrap();

    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let mut replies = Vec::new();
    while replies.len() < 7 {
        match parse_reply(&buf) {
            ReplyOutcome::Reply(r, used) => {
                buf.drain(..used);
                replies.push(r);
                continue;
            }
            ReplyOutcome::Incomplete => {}
            ReplyOutcome::Error(e) => panic!("bad reply stream: {e}"),
        }
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed early: got {replies:?}");
        buf.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(replies[0], Reply::Simple("OK".into()));
    assert!(matches!(&replies[1], Reply::Error(e) if e.contains("nested")));
    assert_eq!(replies[2], Reply::Simple("OK".into()));
    assert!(matches!(&replies[3], Reply::Error(e) if e.contains("DISCARD without MULTI")));
    assert!(matches!(&replies[4], Reply::Error(e) if e.contains("EXEC without MULTI")));
    assert_eq!(replies[5], Reply::Simple("OK".into()));
    assert_eq!(replies[6], Reply::Simple("OK".into()));
    server.join().unwrap().expect("serve failed");
}
