//! # csmv — Client-Server Multi-Versioned STM for GPUs
//!
//! The reference implementation of the paper's contribution, on the
//! simulated GPU of [`gpu_sim`]. CSMV decouples transaction *execution*
//! (client warps, spread across the device) from the *commit decision*
//! (a server kernel pinned to one SM), which buys two things:
//!
//! 1. the commit metadata — the Active Transaction Record and its
//!    reservation counter — lives in the server SM's **shared memory**,
//!    turning the global-memory CAS convoys of conventional designs into
//!    cheap on-chip traffic ([`atr::SharedAtr`]);
//! 2. the server can process a client warp's transactions as one **batch**,
//!    enabling the cooperative algorithms of §III-B: collaborative
//!    validation, batched ATR insertion, and single-bump GTS publication.
//!
//! The client side ([`client::CsmvClient`]) adds the complementary
//! mechanisms: intra-warp **pre-validation** over shuffle exchanges,
//! **client-side write-back**, and GTS **turn-taking** (a batch publishes
//! only when every earlier commit has). Read-only transactions never talk
//! to the server at all — they read a consistent snapshot out of the
//! multi-versioned boxes ([`stm_core::vbox`]) and skip commit entirely.
//!
//! The ablation variants of §IV-C are selected via [`CsmvVariant`].
//!
//! ```
//! use csmv::{run, CsmvConfig};
//! use workloads::{BankConfig, BankSource};
//!
//! let mut cfg = CsmvConfig::default();
//! cfg.gpu.num_sms = 4; // 3 client SMs + 1 server SM
//! let bank = BankConfig::small(64, 50);
//! let result = run(
//!     &cfg,
//!     |thread| BankSource::new(&bank, 1, thread, 2),
//!     bank.accounts,
//!     |_| bank.initial_balance,
//! );
//! assert!(result.stats.commits() > 0);
//! stm_core::check_history(&result.records, &bank.initial_state(), true).unwrap();
//! ```

#![forbid(unsafe_code)]

pub mod atr;
pub mod check;
pub mod client;
pub mod multi;
pub mod protocol;
pub mod server;
pub mod steps;
pub mod variant;

use gpu_sim::{AnalysisConfig, Device, FaultPlan, GpuConfig, RunMode};
use stm_core::mv_exec::MvExecConfig;
use stm_core::{RetryPolicy, RunResult, TxSource, VBoxHeap};

pub use atr::SharedAtr;
pub use check::{CsmvInvariantChecker, MultiCsmvInvariantChecker};
pub use client::CsmvClient;
pub use multi::{run_multi, run_multi_checked, MultiCsmvConfig};
pub use protocol::CommitProtocol;
pub use server::{ReceiverWarp, ServerControl, WorkerWarp};
pub use variant::CsmvVariant;

/// Configuration of a CSMV launch.
#[derive(Debug, Clone)]
pub struct CsmvConfig {
    /// Device geometry and cost model. The last SM is the server.
    pub gpu: GpuConfig,
    /// Versions retained per VBox (Table V sweeps this).
    pub versions_per_box: u64,
    /// Client warps per client SM (64-thread blocks ⇒ 2).
    pub warps_per_sm: usize,
    /// Worker warps on the server SM (plus one receiver warp).
    pub server_workers: usize,
    /// Read-set capacity per thread (sizes the request payload).
    pub max_rs: usize,
    /// Write-set capacity per thread.
    pub max_ws: usize,
    /// ATR ring capacity in entries — bounded by shared memory; snapshots
    /// older than the ring window abort spuriously.
    pub atr_capacity: u64,
    /// Server dispatch-queue capacity. `None` sizes it to the client count
    /// (the default — one outstanding request per client means it can never
    /// overflow). Smaller values make [`stm_core::AbortReason::ServerQueueFull`]
    /// rejections reachable.
    pub server_queue_cap: Option<usize>,
    /// Record per-transaction histories for the correctness oracle.
    pub record_history: bool,
    /// Which mechanisms are enabled (ablations of §IV-C).
    pub variant: CsmvVariant,
    /// Analysis layer (race detector / protocol-invariant checks); all-off
    /// by default, which leaves the simulator on its zero-cost fast path.
    pub analysis: AnalysisConfig,
    /// Host execution mode. `Parallel` attempts the phase-barriered
    /// scheduler and falls back to an identical sequential re-run when a
    /// window conflicts (CSMV's mailbox/GTS coupling conflicts quickly, so
    /// expect the fallback; results are bit-identical either way).
    pub sim: RunMode,
    /// Stall watchdog: if every live warp spends more than this many cycles
    /// doing nothing but polling, the run stops and [`run_checked`] returns
    /// [`RunError::Stalled`] instead of hanging silently. `None` disables it.
    pub max_idle_cycles: Option<u64>,
    /// Failure-recovery policy installed on every client warp (response
    /// timeout, bounded exponential backoff, retry budget). Inert by
    /// default, so healthy runs are byte-identical with or without it.
    pub recovery: RetryPolicy,
    /// Seeded fault plan (message drops/delays/duplicates, warp kills,
    /// server-SM crashes). `None` injects nothing.
    pub faults: Option<FaultPlan>,
}

/// A [`CsmvConfig`] that cannot be launched, diagnosed before any device
/// state is allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsmvConfigError {
    /// CSMV needs at least one client SM plus the server SM.
    NotEnoughSms {
        /// Configured SM count.
        num_sms: usize,
    },
    /// `warps_per_sm` is zero: no client would ever run.
    NoClientWarps,
    /// `server_workers` is zero: requests would queue forever.
    NoServerWorkers,
    /// `server_queue_cap` was explicitly set to zero.
    ZeroQueueCap,
    /// The ATR ring plus the dispatch queue exceed the server SM's shared
    /// memory.
    SharedMemoryExhausted {
        /// Words the server-side structures need.
        needed: usize,
        /// Words one SM offers.
        available: usize,
    },
}

impl std::fmt::Display for CsmvConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotEnoughSms { num_sms } => write!(
                f,
                "CSMV needs at least one client SM and one server SM (got {num_sms})"
            ),
            Self::NoClientWarps => write!(f, "warps_per_sm must be at least 1"),
            Self::NoServerWorkers => write!(f, "server_workers must be at least 1"),
            Self::ZeroQueueCap => write!(f, "server_queue_cap must be at least 1"),
            Self::SharedMemoryExhausted { needed, available } => write!(
                f,
                "shared memory exhausted on the server SM: \
                 ATR ring + dispatch queue need {needed} words, one SM has {available}"
            ),
        }
    }
}

impl std::error::Error for CsmvConfigError {}

/// A CSMV run that could not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration was rejected before launch.
    Config(CsmvConfigError),
    /// The stall watchdog interrupted the run: every live warp had been
    /// polling without progress for longer than
    /// [`CsmvConfig::max_idle_cycles`] — the protocol is wedged (e.g. every
    /// retry budget exhausted while a GTS turn is permanently vacant).
    Stalled {
        /// Simulated cycle at which the stall was diagnosed.
        cycle: u64,
        /// Warps that had not retired.
        live_warps: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "{e}"),
            Self::Stalled { cycle, live_warps } => write!(
                f,
                "run stalled at cycle {cycle}: {live_warps} live warp(s) \
                 polling without progress"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Stalled { .. } => None,
        }
    }
}

impl Default for CsmvConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            versions_per_box: 4,
            warps_per_sm: 2,
            server_workers: 7,
            max_rs: 64,
            max_ws: 8,
            atr_capacity: 384,
            server_queue_cap: None,
            record_history: true,
            variant: CsmvVariant::Full,
            analysis: AnalysisConfig::default(),
            sim: RunMode::Sequential,
            max_idle_cycles: Some(1_000_000),
            recovery: RetryPolicy::default(),
            faults: None,
        }
    }
}

impl CsmvConfig {
    /// Number of client warps (everything but the server SM runs clients).
    pub fn num_client_warps(&self) -> usize {
        (self.gpu.num_sms - 1) * self.warps_per_sm
    }

    /// Grow the ATR ring to fill whatever shared memory remains on the
    /// server SM after the dispatch queue — larger rings mean fewer
    /// spurious (window-overflow) aborts, so a real deployment always sizes
    /// the ring this way. Call after setting `max_ws` and the geometry.
    pub fn fit_atr_capacity(&mut self) {
        let ctl_words = 3 + self.num_client_warps().max(1);
        let free = self.gpu.shared_words_per_sm.saturating_sub(ctl_words + 1);
        self.atr_capacity = (free / (2 + self.max_ws)).max(4) as u64;
    }

    /// Total client threads.
    pub fn num_threads(&self) -> usize {
        self.num_client_warps() * gpu_sim::WARP_LANES
    }

    /// Effective dispatch-queue capacity.
    fn queue_cap(&self) -> usize {
        self.server_queue_cap
            .unwrap_or_else(|| self.num_client_warps().max(1))
    }

    /// Check that this configuration can launch, without allocating any
    /// device state. [`run_checked`] calls this first; launching an invalid
    /// config through [`run`] panics with the same diagnosis.
    pub fn validate(&self) -> Result<(), CsmvConfigError> {
        if self.gpu.num_sms < 2 {
            return Err(CsmvConfigError::NotEnoughSms {
                num_sms: self.gpu.num_sms,
            });
        }
        if self.warps_per_sm == 0 {
            return Err(CsmvConfigError::NoClientWarps);
        }
        if self.server_workers == 0 {
            return Err(CsmvConfigError::NoServerWorkers);
        }
        if self.server_queue_cap == Some(0) {
            return Err(CsmvConfigError::ZeroQueueCap);
        }
        // Mirror the server-SM shared allocations: the ATR ring
        // (1 + capacity·(2 + max_ws) words) plus the control block
        // (3 words + the dispatch queue).
        let atr_words = 1 + self.atr_capacity as usize * (2 + self.max_ws);
        let ctl_words = 3 + self.queue_cap();
        let needed = atr_words + ctl_words;
        if needed > self.gpu.shared_words_per_sm {
            return Err(CsmvConfigError::SharedMemoryExhausted {
                needed,
                available: self.gpu.shared_words_per_sm,
            });
        }
        Ok(())
    }
}

/// Run a workload to completion on CSMV.
///
/// * `make_source(thread_id)` builds each client thread's transaction
///   stream;
/// * `num_items` / `initial(item)` describe the transactional heap.
pub fn run<S, F>(
    cfg: &CsmvConfig,
    make_source: F,
    num_items: u64,
    initial: impl FnMut(u64) -> u64,
) -> RunResult
where
    S: TxSource + 'static,
    F: FnMut(usize) -> S,
{
    run_checked(cfg, make_source, num_items, initial).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run`], but with launch-time configuration errors and watchdog-diagnosed
/// stalls reported as values instead of panics.
pub fn run_checked<S, F>(
    cfg: &CsmvConfig,
    mut make_source: F,
    num_items: u64,
    mut initial: impl FnMut(u64) -> u64,
) -> Result<RunResult, RunError>
where
    S: TxSource + 'static,
    F: FnMut(usize) -> S,
{
    cfg.validate().map_err(RunError::Config)?;
    let server_sm = cfg.gpu.num_sms - 1;
    let num_clients = cfg.num_client_warps();

    // The launch is a closure so the parallel mode's conflict fallback can
    // rebuild the identical device from scratch (see gpu_sim::run_with_mode).
    let launch = || {
        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = VBoxHeap::init(
            dev.global_mut(),
            num_items,
            cfg.versions_per_box,
            &mut initial,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc_with_queue(&mut dev, server_sm, cfg.queue_cap());
        // next_cts starts at 1 (commit timestamps are 1-based; GTS starts at 0).
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);

        if let Some(plan) = &cfg.faults {
            dev.set_fault_plan(plan.clone());
        }
        if let Some(max_idle) = cfg.max_idle_cycles {
            dev.set_watchdog(max_idle);
        }
        dev.enable_analysis(cfg.analysis);
        if cfg.analysis.invariants {
            dev.add_invariant_checker(Box::new(check::CsmvInvariantChecker::new(
                atr.clone(),
                heap.clone(),
                gts_addr,
                server_sm,
            )));
        }

        // -- clients -------------------------------------------------------
        let mut client_ids = Vec::new();
        let mut thread_id = 0usize;
        let mut slot = 0usize;
        for sm in 0..server_sm {
            for _ in 0..cfg.warps_per_sm {
                let sources: Vec<S> = (0..gpu_sim::WARP_LANES)
                    .map(|i| make_source(thread_id + i))
                    .collect();
                let exec_cfg = MvExecConfig {
                    record_history: cfg.record_history,
                    retry: cfg.recovery.clone(),
                    ..MvExecConfig::default()
                };
                let mut client = CsmvClient::new(
                    sources,
                    thread_id,
                    exec_cfg,
                    heap.clone(),
                    proto.clone(),
                    slot,
                    gts_addr,
                    done_addr,
                    cfg.variant,
                );
                client.set_recovery(cfg.recovery.clone());
                client_ids.push(dev.spawn(sm, Box::new(client)));
                thread_id += gpu_sim::WARP_LANES;
                slot += 1;
            }
        }

        // -- server --------------------------------------------------------
        let receiver = ReceiverWarp::new(proto.clone(), ctl.clone(), num_clients, done_addr);
        let receiver_id = dev.spawn(server_sm, Box::new(receiver));
        let mut worker_ids = Vec::new();
        for _ in 0..cfg.server_workers {
            let worker = WorkerWarp::new(
                proto.clone(),
                ctl.clone(),
                atr.clone(),
                heap.clone(),
                gts_addr,
                cfg.variant,
            );
            worker_ids.push(dev.spawn(server_sm, Box::new(worker)));
        }
        (dev, (client_ids, receiver_id, worker_ids))
    };

    let (mut dev, (client_ids, receiver_id, worker_ids)) = gpu_sim::run_with_mode(cfg.sim, launch);

    if let Some(info) = dev.stalled() {
        return Err(RunError::Stalled {
            cycle: info.cycle,
            live_warps: info.live_warps,
        });
    }

    let analysis = dev.finish_analysis();
    let mut result = RunResult {
        elapsed_cycles: dev.elapsed_cycles(),
        analysis,
        ..Default::default()
    };
    result
        .server_breakdown
        .add_warp(dev.warp_stats(receiver_id));
    {
        let receiver = dev
            .take_program(receiver_id)
            .downcast::<ReceiverWarp>()
            .expect("receiver program type");
        result.metrics.merge(&receiver.metrics);
    }
    for id in worker_ids {
        result.server_breakdown.add_warp(dev.warp_stats(id));
        let worker = dev
            .take_program(id)
            .downcast::<WorkerWarp>()
            .expect("worker program type");
        result.metrics.merge(&worker.metrics);
    }
    for id in client_ids {
        result.client_breakdown.add_warp(dev.warp_stats(id));
        let mut client = dev
            .take_program(id)
            .downcast::<CsmvClient<S>>()
            .expect("client program type");
        result.stats.merge(&client.exec.stats());
        result.metrics.merge(&client.exec.metrics);
        result.records.append(&mut client.exec.take_records());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use stm_core::{check_history, AbortReason, Phase, TxLogic, TxOp};
    use workloads::{BankConfig, BankSource};

    fn small_cfg(variant: CsmvVariant) -> CsmvConfig {
        let gpu = GpuConfig {
            num_sms: 5,
            ..Default::default()
        }; // 4 client SMs + server
        CsmvConfig {
            gpu,
            variant,
            server_workers: 3,
            ..Default::default()
        }
    }

    fn bank_run(
        variant: CsmvVariant,
        rot_pct: u8,
        seed: u64,
    ) -> (CsmvConfig, BankConfig, RunResult) {
        let cfg = small_cfg(variant);
        let bank = BankConfig::small(64, rot_pct);
        let res = run(
            &cfg,
            |t| BankSource::new(&bank, seed, t, 3),
            bank.accounts,
            |_| bank.initial_balance,
        );
        (cfg, bank, res)
    }

    fn assert_correct(cfg: &CsmvConfig, bank: &BankConfig, res: &RunResult, txs_per_thread: usize) {
        assert_eq!(
            res.stats.commits(),
            (cfg.num_threads() * txs_per_thread) as u64,
            "every transaction must eventually commit"
        );
        let initial: HashMap<u64, u64> = bank.initial_state();
        check_history(&res.records, &initial, true).expect("opaque history");
        let mut heap = initial;
        let mut updates: Vec<_> = res.records.iter().filter(|r| r.cts.is_some()).collect();
        updates.sort_by_key(|r| r.cts.unwrap());
        // Commit timestamps must be dense 1..=n (no gaps — the GTS
        // turn-taking protocol relies on it).
        for (i, r) in updates.iter().enumerate() {
            assert_eq!(r.cts.unwrap(), i as u64 + 1, "cts must be dense");
        }
        for r in updates {
            for &(item, value) in &r.writes {
                heap.insert(item, value);
            }
        }
        assert_eq!(heap.values().sum::<u64>(), bank.total_balance());
    }

    #[test]
    fn full_variant_bank_is_correct() {
        let (cfg, bank, res) = bank_run(CsmvVariant::Full, 30, 42);
        assert_correct(&cfg, &bank, &res, 3);
        // The server actually did validation work.
        assert!(res.server_breakdown.phase(Phase::Validation) > 0);
        // Clients never validate on their own in CSMV.
        assert_eq!(res.client_breakdown.phase(Phase::Validation), 0);
        // Pre-validation ran on the clients.
        assert!(res.client_breakdown.phase(Phase::PreValidation) > 0);
    }

    #[test]
    fn nocv_variant_bank_is_correct() {
        let (cfg, bank, res) = bank_run(CsmvVariant::NoCv, 30, 43);
        assert_correct(&cfg, &bank, &res, 3);
    }

    #[test]
    fn onlycs_variant_bank_is_correct() {
        let (cfg, bank, res) = bank_run(CsmvVariant::OnlyCs, 30, 44);
        assert_correct(&cfg, &bank, &res, 3);
        // OnlyCs: the server performs the write-back.
        assert!(res.server_breakdown.phase(Phase::WriteBack) > 0);
        assert_eq!(res.client_breakdown.phase(Phase::PreValidation), 0);
    }

    #[test]
    fn rot_only_workload_never_contacts_server_for_commit() {
        let (cfg, bank, res) = bank_run(CsmvVariant::Full, 100, 45);
        assert_correct(&cfg, &bank, &res, 3);
        assert_eq!(res.stats.aborts(), 0);
        // No update transactions ⇒ the server never validated anything.
        assert_eq!(res.server_breakdown.phase(Phase::Validation), 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = bank_run(CsmvVariant::Full, 20, 7).2;
        let b = bank_run(CsmvVariant::Full, 20, 7).2;
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.stats, b.stats);
    }

    /// All threads increment one counter: maximal contention, pre-validation
    /// and server validation both fire constantly.
    #[derive(Clone)]
    struct Incr {
        step: u8,
        seen: u64,
    }
    impl TxLogic for Incr {
        fn is_read_only(&self) -> bool {
            false
        }
        fn reset(&mut self) {
            self.step = 0;
        }
        fn next(&mut self, last: Option<u64>) -> TxOp {
            match self.step {
                0 => {
                    self.step = 1;
                    TxOp::Read { item: 0 }
                }
                1 => {
                    self.seen = last.unwrap();
                    self.step = 2;
                    TxOp::Write {
                        item: 0,
                        value: self.seen + 1,
                    }
                }
                _ => TxOp::Finish,
            }
        }
    }
    struct Once(Option<Incr>);
    impl stm_core::TxSource for Once {
        type Tx = Incr;
        fn next_tx(&mut self) -> Option<Incr> {
            self.0.take()
        }
    }

    #[test]
    fn contended_counter_is_exact_on_all_variants() {
        for variant in [CsmvVariant::Full, CsmvVariant::NoCv, CsmvVariant::OnlyCs] {
            let mut cfg = small_cfg(variant);
            cfg.versions_per_box = 8;
            let res = run(&cfg, |_| Once(Some(Incr { step: 0, seen: 0 })), 4, |_| 0);
            let n = cfg.num_threads() as u64;
            assert_eq!(res.stats.update_commits, n, "variant {variant:?}");
            check_history(&res.records, &HashMap::new(), true)
                .unwrap_or_else(|e| panic!("variant {variant:?}: {e}"));
            let max_write = res
                .records
                .iter()
                .filter_map(|r| r.cts.map(|c| (c, r.writes[0].1)))
                .max()
                .map(|(_, v)| v)
                .unwrap();
            assert_eq!(max_write, n, "variant {variant:?}");
        }
    }

    #[test]
    fn atr_window_overflow_causes_spurious_aborts_but_stays_correct() {
        // A tiny ATR ring forces snapshots out of the validation window.
        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.atr_capacity = 4;
        cfg.versions_per_box = 16;
        let bank = BankConfig::small(16, 0);
        let res = run(
            &cfg,
            |t| BankSource::new(&bank, 9, t, 2),
            bank.accounts,
            |_| bank.initial_balance,
        );
        assert_eq!(res.stats.commits(), (cfg.num_threads() * 2) as u64);
        check_history(&res.records, &bank.initial_state(), true).expect("opaque history");
        // The spurious aborts must be attributed to the window, not to
        // genuine read-validation conflicts.
        assert!(
            res.metrics.aborts.count(AbortReason::AtrWindowOverflow) > 0,
            "window aborts must be classified: {:?}",
            res.metrics.aborts
        );
    }

    // -- abort-reason taxonomy: each reason reachable by construction -------

    /// Metrics must agree with the commit/abort counters: every abort has a
    /// reason and a latency sample, every commit a latency sample.
    fn assert_metrics_consistent(res: &RunResult) {
        assert_eq!(res.metrics.aborts.total(), res.stats.aborts());
        assert_eq!(res.metrics.abort_latency.count(), res.stats.aborts());
        assert_eq!(res.metrics.commit_latency.count(), res.stats.commits());
    }

    #[test]
    fn preval_kills_are_attributed_on_full_variant() {
        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.versions_per_box = 8;
        let res = run(&cfg, |_| Once(Some(Incr { step: 0, seen: 0 })), 4, |_| 0);
        assert_metrics_consistent(&res);
        // Every warp submits 32 lanes writing item 0: intra-warp
        // pre-validation must kill lanes before the server sees them.
        assert!(res.metrics.aborts.count(AbortReason::PreValidationKill) > 0);
        // The server still sees batches; their sizes were recorded.
        assert!(res.metrics.batch_sizes.count() > 0);
        assert!(!res.metrics.atr_occupancy.is_empty());
        assert!(!res.metrics.gts_stall.is_empty());
    }

    #[test]
    fn server_conflicts_are_read_validation_on_onlycs_variant() {
        // OnlyCs disables pre-validation, so the same all-lanes-increment
        // conflict is discovered by the server's validation instead.
        let mut cfg = small_cfg(CsmvVariant::OnlyCs);
        cfg.versions_per_box = 8;
        let res = run(&cfg, |_| Once(Some(Incr { step: 0, seen: 0 })), 4, |_| 0);
        assert_metrics_consistent(&res);
        assert_eq!(res.metrics.aborts.count(AbortReason::PreValidationKill), 0);
        assert!(res.metrics.aborts.count(AbortReason::ReadValidation) > 0);
    }

    #[test]
    fn server_queue_full_rejections_are_attributed_and_correct() {
        // A one-entry dispatch queue cannot hold every client's request, so
        // the receiver must reject overflowing batches with ServerQueueFull;
        // the rejected clients retry until the queue drains.
        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.server_queue_cap = Some(1);
        cfg.versions_per_box = 16;
        let bank = BankConfig::small(64, 0);
        let res = run(
            &cfg,
            |t| BankSource::new(&bank, 21, t, 2),
            bank.accounts,
            |_| bank.initial_balance,
        );
        assert_eq!(res.stats.commits(), (cfg.num_threads() * 2) as u64);
        check_history(&res.records, &bank.initial_state(), true).expect("opaque history");
        assert_metrics_consistent(&res);
        assert!(
            res.metrics.aborts.count(AbortReason::ServerQueueFull) > 0,
            "a 1-entry queue must reject batches: {:?}",
            res.metrics.aborts
        );
    }

    #[test]
    fn invalid_configs_are_rejected_before_launch() {
        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.gpu.num_sms = 1;
        assert_eq!(
            cfg.validate(),
            Err(CsmvConfigError::NotEnoughSms { num_sms: 1 })
        );

        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.server_queue_cap = Some(0);
        assert_eq!(cfg.validate(), Err(CsmvConfigError::ZeroQueueCap));

        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.warps_per_sm = 0;
        assert_eq!(cfg.validate(), Err(CsmvConfigError::NoClientWarps));

        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.atr_capacity = 1 << 30;
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, CsmvConfigError::SharedMemoryExhausted { .. }));
        // The message run() panics with keeps the historical wording.
        assert!(err.to_string().contains("shared memory exhausted"));

        assert_eq!(small_cfg(CsmvVariant::Full).validate(), Ok(()));
    }

    #[test]
    fn message_faults_with_recovery_preserve_correctness() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let mut cfg = small_cfg(CsmvVariant::Full);
        let spec: FaultSpec = "drop_req=0.2,drop_resp=0.2,dup_req=0.1,delay_req=0.3x200"
            .parse()
            .unwrap();
        cfg.faults = Some(FaultPlan::new(0xFA01, spec));
        cfg.recovery = stm_core::RetryPolicy {
            resp_timeout: Some(20_000),
            max_send_attempts: 16,
            backoff_base: 64,
            backoff_cap: 4096,
            jitter_seed: 7,
            ..Default::default()
        };
        let bank = BankConfig::small(64, 20);
        let res = run_checked(
            &cfg,
            |t| BankSource::new(&bank, 11, t, 3),
            bank.accounts,
            |_| bank.initial_balance,
        )
        .expect("recovery must keep the run live");
        let total = (cfg.num_threads() * 3) as u64;
        assert_eq!(
            res.stats.commits() + res.stats.failed,
            total,
            "every transaction must commit or fail terminally"
        );
        assert!(
            res.metrics.faults.total() > 0,
            "the plan must actually inject faults: {:?}",
            res.metrics.faults
        );
        check_history(&res.records, &bank.initial_state(), true).expect("opaque history");
        assert_metrics_consistent(&res);
    }

    #[test]
    fn version_overflow_is_attributed_with_single_version_boxes() {
        // One version per box: laggard snapshots fall off the version ring
        // during execution and abort with snapshot-too-old.
        let mut cfg = small_cfg(CsmvVariant::Full);
        cfg.versions_per_box = 1;
        let res = run(&cfg, |_| Once(Some(Incr { step: 0, seen: 0 })), 4, |_| 0);
        assert_metrics_consistent(&res);
        assert!(res.metrics.aborts.count(AbortReason::VersionOverflow) > 0);
    }
}

#[cfg(test)]
mod debug_hang {
    use super::*;
    use workloads::{BankConfig, BankSource};

    #[test]
    fn diagnose() {
        let gpu = GpuConfig {
            num_sms: 5,
            ..Default::default()
        };
        let cfg = CsmvConfig {
            gpu,
            variant: CsmvVariant::Full,
            server_workers: 3,
            ..Default::default()
        };
        let bank = BankConfig::small(64, 30);
        // Inline copy of run() with a bounded loop and state dump.
        let server_sm = cfg.gpu.num_sms - 1;
        let num_clients = cfg.num_client_warps();
        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = VBoxHeap::init(
            dev.global_mut(),
            bank.accounts,
            cfg.versions_per_box,
            |_| bank.initial_balance,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc(&mut dev, server_sm, num_clients);
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);
        let mut ids = Vec::new();
        let mut thread_id = 0;
        let mut slot = 0;
        for sm in 0..server_sm {
            for _ in 0..cfg.warps_per_sm {
                let sources: Vec<BankSource> = (0..32)
                    .map(|i| BankSource::new(&bank, 42, thread_id + i, 3))
                    .collect();
                let c = CsmvClient::new(
                    sources,
                    thread_id,
                    Default::default(),
                    heap.clone(),
                    proto.clone(),
                    slot,
                    gts_addr,
                    done_addr,
                    cfg.variant,
                );
                ids.push(("client", dev.spawn(sm, Box::new(c))));
                thread_id += 32;
                slot += 1;
            }
        }
        ids.push((
            "receiver",
            dev.spawn(
                server_sm,
                Box::new(ReceiverWarp::new(
                    proto.clone(),
                    ctl.clone(),
                    num_clients,
                    done_addr,
                )),
            ),
        ));
        for _ in 0..cfg.server_workers {
            ids.push((
                "worker",
                dev.spawn(
                    server_sm,
                    Box::new(WorkerWarp::new(
                        proto.clone(),
                        ctl.clone(),
                        atr.clone(),
                        heap.clone(),
                        gts_addr,
                        cfg.variant,
                    )),
                ),
            ));
        }
        dev.set_watchdog(500_000);
        dev.run_to_completion();
        let Some(info) = dev.stalled() else {
            return; // completed normally
        };
        println!(
            "STALLED at cycle {} ({} live warps). GTS={} done={} next_cts={}",
            info.cycle,
            info.live_warps,
            dev.global()[gts_addr as usize],
            dev.global()[done_addr as usize],
            dev.shared_read_host(server_sm, atr.next_cts_addr())
        );
        for (kind, id) in &ids {
            if dev.warp_done(*id) {
                continue;
            }
            let dbg = dev.program(*id);
            let state = if let Some(c) = dbg.downcast_ref::<CsmvClient<BankSource>>() {
                format!("{:?}", c.debug_phase())
            } else if let Some(w) = dbg.downcast_ref::<WorkerWarp>() {
                format!("{:?}", w.debug_state())
            } else if let Some(r) = dbg.downcast_ref::<ReceiverWarp>() {
                format!("{:?}", r.debug_state())
            } else {
                "?".into()
            };
            println!("warp {id} {kind}: {state}");
        }
        panic!(
            "{}",
            RunError::Stalled {
                cycle: info.cycle,
                live_warps: info.live_warps,
            }
        );
    }
}
