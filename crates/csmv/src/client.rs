//! The CSMV client warp: executes transaction bodies (building the commit
//! request in place), pre-validates intra-warp conflicts with shuffle
//! exchanges, ships the batch to the commit server, and — on a commit
//! response — performs the write-back itself, publishing the whole batch
//! with a single GTS bump once its turn arrives (§III-B).

use gpu_sim::channel::{STATUS_EMPTY, STATUS_REQUEST, STATUS_RESPONSE};
use gpu_sim::{full_mask, MemOrder, StepOutcome, WarpCtx, WarpProgram, WARP_LANES};
use stm_core::mv_exec::{MvExec, MvExecConfig};
use stm_core::{AbortReason, FaultEvent, Phase, RetryPolicy, TxSource, VBoxHeap};

use crate::protocol::{unpack_outcome, CommitProtocol, Outcome, RequestSetArea};
use crate::steps;
use crate::variant::CsmvVariant;

/// Warp-level phase of the client kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase_ {
    /// Fetch transactions and read the GTS.
    Begin,
    /// Execute bodies (the request payload fills in as a side effect).
    Bodies,
    /// Commit ROTs / abort version-overflow lanes (no memory traffic).
    Settle,
    /// Intra-warp pre-validation: `lane` is the next broadcaster.
    PreVal { lane: usize },
    /// Write the per-lane A headers.
    SendHdrA,
    /// Write the per-lane B headers.
    SendHdrB,
    /// Write the batch sequence word (idempotence key for retries).
    SendSeq,
    /// Flip the mailbox flag to REQUEST.
    SendFlag,
    /// Costed wait until `resume_at`, then (re-)post the request flag —
    /// used for injected send delays and timeout backoff.
    Backoff { resume_at: u64 },
    /// Poll for the server's response.
    WaitResp,
    /// Read the 32 outcome words.
    ReadOutcomes,
    /// Return the mailbox to EMPTY.
    ClearFlag,
    /// Client-side write-back: version `widx`, sub-step 0/1/2.
    WriteBack { widx: usize, sub: u8 },
    /// Wait until GTS reaches `base − 1`.
    GtsWait { base: u64, n: u64 },
    /// Publish the batch: GTS ← base + n − 1.
    GtsBump { base: u64, n: u64 },
    /// Book-keep commits, then loop.
    FinishRound,
    /// Tell the server this warp is finished.
    SignalDone,
    /// Retired.
    Finished,
}

/// One CSMV client warp.
pub struct CsmvClient<S: TxSource> {
    /// The shared execution engine (public for result harvesting).
    pub exec: MvExec<S>,
    heap: VBoxHeap,
    proto: CommitProtocol,
    area: RequestSetArea,
    /// This warp's mailbox slot.
    slot: usize,
    gts_addr: u64,
    done_addr: u64,
    variant: CsmvVariant,
    phase: Phase_,
    /// Seeded bug (see [`CsmvClient::inject_skip_gts_wait`]).
    skip_gts_wait: bool,
    /// Commit timestamps handed back by the server (0 = none).
    lane_cts: [u64; WARP_LANES],
    /// Per-lane write-back head registers.
    lane_head: [u64; WARP_LANES],
    /// Cycle at which the current GTS-wait episode began.
    gts_wait_start: Option<u64>,
    /// Failure-recovery policy (response timeout, backoff, retry budget);
    /// inert by default so healthy runs are unchanged.
    recovery: RetryPolicy,
    /// Fault-domain channel id (partition index in multi-server setups).
    fault_channel: u64,
    /// Next batch sequence number (1-based; the receiver treats 0 as
    /// "nothing received yet").
    next_seq: u64,
    /// Seq of the in-flight batch; retries re-post the same value.
    cur_seq: u64,
    /// Send attempts of the in-flight batch (0 while the first send is
    /// pending).
    send_attempt: u32,
    /// Cycle at which the current send's response wait began.
    send_started: u64,
    /// An injected send delay has already been served for this attempt.
    delay_served: bool,
}

impl<S: TxSource> CsmvClient<S> {
    /// Build a client warp bound to mailbox `slot`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sources: Vec<S>,
        thread_base: usize,
        exec_cfg: MvExecConfig,
        heap: VBoxHeap,
        proto: CommitProtocol,
        slot: usize,
        gts_addr: u64,
        done_addr: u64,
        variant: CsmvVariant,
    ) -> Self {
        let area = proto.set_area(slot);
        Self {
            exec: MvExec::new(sources, thread_base, exec_cfg),
            heap,
            proto,
            area,
            slot,
            gts_addr,
            done_addr,
            variant,
            phase: Phase_::Begin,
            lane_cts: [0; WARP_LANES],
            lane_head: [0; WARP_LANES],
            skip_gts_wait: false,
            gts_wait_start: None,
            recovery: RetryPolicy::default(),
            fault_channel: 0,
            next_seq: 1,
            cur_seq: 0,
            send_attempt: 0,
            send_started: 0,
            delay_served: false,
        }
    }

    /// Install a failure-recovery policy (timeouts, backoff, retry budget).
    pub fn set_recovery(&mut self, policy: RetryPolicy) {
        self.recovery = policy;
    }

    /// Set the fault-domain channel id (multi-server partition index).
    pub fn set_fault_channel(&mut self, channel: u64) {
        self.fault_channel = channel;
    }

    /// Seed a protocol bug for analysis-layer tests: this warp publishes its
    /// batches without waiting for its GTS turn, breaking the turn-taking
    /// order of §III-B. The invariant checker must flag the first such bump.
    pub fn inject_skip_gts_wait(&mut self) {
        self.skip_gts_wait = true;
    }

    /// Lanes whose update transaction survived so far and awaits submission.
    fn committing_mask(&self) -> u32 {
        self.exec.committing_update_mask()
    }

    /// Lanes holding a server-granted commit timestamp.
    fn committed_mask(&self) -> u32 {
        let mut m = 0;
        for (i, &cts) in self.lane_cts.iter().enumerate() {
            if cts != 0 {
                m |= 1 << i;
            }
        }
        m
    }

    /// First broadcaster at or after `from` for pre-validation.
    fn next_broadcaster(&self, from: usize) -> Option<usize> {
        (from..WARP_LANES).find(|&l| self.committing_mask() & (1 << l) != 0)
    }

    fn after_settle(&mut self) -> Phase_ {
        if self.committing_mask() == 0 {
            return Phase_::Begin;
        }
        if self.variant.pre_validation() {
            if let Some(lane) = self.next_broadcaster(0) {
                return Phase_::PreVal { lane };
            }
        }
        Phase_::SendHdrA
    }

    /// One pre-validation step: lane `lane` broadcasts its write-set via
    /// shuffles; every later committing lane checks it against its own
    /// read/write-set and aborts on intersection (the survivor set is
    /// conflict-free, so the server can batch it).
    fn step_preval(&mut self, w: &mut WarpCtx, lane: usize) -> Phase_ {
        w.set_phase(Phase::PreValidation.id());
        let committing = self.committing_mask();
        let ws_items: Vec<u64> = self.exec.lanes[lane]
            .ws
            .iter()
            .map(|&(item, _)| item)
            .collect();
        // One shuffle per broadcast word, plus the compare ALU work. The
        // loser decision itself is the pure `steps::preval_losers`.
        let mut regs = [0u64; WARP_LANES];
        for &item in &ws_items {
            regs[lane] = item;
            let _ = w.shfl(committing, &regs, |_| lane);
        }
        let lanes = &self.exec.lanes;
        let losers = steps::preval_losers(lane, &ws_items, committing, |j, e| {
            let lj = &lanes[j];
            lj.rs.contains(&e) || lj.ws.iter().any(|&(it, _)| it == e)
        });
        let compares = (ws_items.len() as u64) * ((committing.count_ones()) as u64);
        w.alu(committing, compares.max(1));
        let now = w.now();
        for j in 0..WARP_LANES {
            if losers & (1 << j) != 0 {
                self.exec.abort_lane(j, now, AbortReason::PreValidationKill);
            }
        }
        match self.next_broadcaster(lane + 1) {
            Some(next) => Phase_::PreVal { lane: next },
            None => {
                if self.committing_mask() == 0 {
                    Phase_::Begin
                } else {
                    Phase_::SendHdrA
                }
            }
        }
    }

    fn leader_lane(&self) -> usize {
        0
    }

    /// Current warp phase, for diagnostics.
    pub fn debug_phase(&self) -> String {
        format!(
            "{:?} committing={:032b}",
            self.phase,
            self.committing_mask()
        )
    }
}

impl<S: TxSource + 'static> WarpProgram for CsmvClient<S> {
    fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
        match self.phase {
            Phase_::Begin => {
                self.lane_cts = [0; WARP_LANES];
                if self.exec.begin_round(w, self.gts_addr) {
                    self.phase = Phase_::Bodies;
                } else {
                    self.phase = Phase_::SignalDone;
                }
                StepOutcome::Running
            }
            Phase_::Bodies => {
                if self.exec.step_bodies(w, &self.heap, &self.area) {
                    self.phase = Phase_::Settle;
                }
                StepOutcome::Running
            }
            Phase_::Settle => {
                w.set_phase(Phase::Execution.id());
                let now = w.now();
                let mut settled = 0u64;
                for lane in 0..WARP_LANES {
                    let l = &self.exec.lanes[lane];
                    if l.logic.is_none() {
                        continue;
                    }
                    if l.overflowed() {
                        self.exec
                            .abort_lane(lane, now, AbortReason::VersionOverflow);
                        settled += 1;
                    } else if l.body_done() && l.is_rot() {
                        let snapshot = l.snapshot;
                        self.exec.commit_lane(lane, now, None, snapshot);
                        settled += 1;
                    }
                }
                w.alu(full_mask(), settled.max(1));
                self.phase = self.after_settle();
                StepOutcome::Running
            }
            Phase_::PreVal { lane } => {
                self.phase = self.step_preval(w, lane);
                StepOutcome::Running
            }
            Phase_::SendHdrA => {
                w.set_phase(Phase::WaitServer.id());
                let committing = self.committing_mask();
                let lanes = &self.exec.lanes;
                let proto = &self.proto;
                let slot = self.slot;
                w.global_write(
                    full_mask(),
                    |l| proto.hdr_a_addr(slot, l),
                    |l| CommitProtocol::pack_hdr_a(committing & (1 << l) != 0, lanes[l].snapshot),
                );
                self.phase = Phase_::SendHdrB;
                StepOutcome::Running
            }
            Phase_::SendHdrB => {
                w.set_phase(Phase::WaitServer.id());
                let lanes = &self.exec.lanes;
                let proto = &self.proto;
                let slot = self.slot;
                w.global_write(
                    full_mask(),
                    |l| proto.hdr_b_addr(slot, l),
                    |l| CommitProtocol::pack_hdr_b(lanes[l].rs.len(), lanes[l].ws.len()),
                );
                self.phase = Phase_::SendSeq;
                StepOutcome::Running
            }
            Phase_::SendSeq => {
                w.set_phase(Phase::WaitServer.id());
                self.cur_seq = self.next_seq;
                self.next_seq += 1;
                self.send_attempt = 0;
                self.delay_served = false;
                let leader = self.leader_lane();
                // Seq words are mailbox control plane, like the status word:
                // recovery resends rewrite them while the server side may
                // still be sweeping, so every access is ordered.
                w.global_write1_ord(
                    leader,
                    self.proto.req_seq_addr(self.slot),
                    self.cur_seq,
                    MemOrder::Release,
                );
                self.phase = Phase_::SendFlag;
                StepOutcome::Running
            }
            Phase_::SendFlag => {
                w.set_phase(Phase::WaitServer.id());
                let channel = self.fault_channel;
                let slot = self.slot as u64;
                let seq = self.cur_seq;
                let attempt = self.send_attempt;
                let mut delay = 0;
                let mut dropped = false;
                if let Some(plan) = w.fault_plan() {
                    if !self.delay_served {
                        delay = plan.request_delay(channel, slot, seq, attempt);
                    }
                    dropped = plan.drop_request(channel, slot, seq, attempt);
                }
                if delay > 0 {
                    self.delay_served = true;
                    let now = w.now();
                    self.exec
                        .metrics
                        .record_fault(FaultEvent::DelayInjected, now);
                    self.phase = Phase_::Backoff {
                        resume_at: now + delay,
                    };
                    return StepOutcome::Running;
                }
                if attempt > 0 {
                    self.exec.metrics.record_fault(FaultEvent::Resend, w.now());
                }
                let leader = self.leader_lane();
                if dropped {
                    // The flag flip is lost in transit: pay the memory cost
                    // but leave the mailbox status untouched (the seq rewrite
                    // is idempotent).
                    w.global_write1_ord(
                        leader,
                        self.proto.req_seq_addr(self.slot),
                        seq,
                        MemOrder::Release,
                    );
                } else {
                    // Release: publishes the headers/payload written above to
                    // the server, which acquires this flag when it polls.
                    w.global_write1_ord(
                        leader,
                        self.proto.mailboxes().status_addr(self.slot),
                        STATUS_REQUEST,
                        MemOrder::Release,
                    );
                }
                self.delay_served = false;
                self.send_started = w.now();
                self.phase = Phase_::WaitResp;
                StepOutcome::Running
            }
            Phase_::Backoff { resume_at } => {
                w.set_phase(Phase::WaitServer.id());
                if w.now() >= resume_at {
                    self.phase = Phase_::SendFlag;
                } else {
                    w.poll_wait();
                }
                StepOutcome::Running
            }
            Phase_::WaitResp => {
                w.set_phase(Phase::WaitServer.id());
                let leader = self.leader_lane();
                // Acquire: seeing RESPONSE makes the server's outcome words
                // visible.
                let st = w.global_read1_ord(
                    leader,
                    self.proto.mailboxes().status_addr(self.slot),
                    MemOrder::Acquire,
                );
                if st == STATUS_RESPONSE {
                    // Guard against a stale response left over from a previous
                    // batch whose duplicate the receiver has not yet re-armed:
                    // only consume outcomes stamped with this batch's seq. A
                    // stale echo falls through to the timeout logic below so a
                    // re-posted REQUEST can reclaim the slot.
                    let echo = w.global_read1_ord(
                        leader,
                        self.proto.resp_seq_addr(self.slot),
                        MemOrder::Acquire,
                    );
                    if steps::response_certified(echo, self.cur_seq) {
                        self.phase = Phase_::ReadOutcomes;
                        return StepOutcome::Running;
                    }
                }
                let timed_out = self
                    .recovery
                    .resp_timeout
                    .is_some_and(|t| w.now().saturating_sub(self.send_started) > t);
                if !timed_out {
                    w.poll_wait();
                    return StepOutcome::Running;
                }
                let now = w.now();
                self.exec.metrics.record_fault(FaultEvent::Timeout, now);
                self.send_attempt += 1;
                if self.send_attempt >= self.recovery.max_send_attempts {
                    // Terminal: the server is unreachable for this batch.
                    let committing = self.committing_mask();
                    for lane in 0..WARP_LANES {
                        if committing & (1 << lane) != 0 {
                            self.exec.fail_lane(lane, now, AbortReason::ServerTimeout);
                        }
                    }
                    self.phase = Phase_::FinishRound;
                } else {
                    let delay = self.recovery.backoff_cycles(
                        self.slot as u64,
                        self.cur_seq,
                        self.send_attempt,
                    );
                    self.phase = Phase_::Backoff {
                        resume_at: now + delay,
                    };
                }
                StepOutcome::Running
            }
            Phase_::ReadOutcomes => {
                w.set_phase(Phase::WaitServer.id());
                let proto = &self.proto;
                let slot = self.slot;
                let outcomes = w.global_read(full_mask(), |l| proto.outcome_addr(slot, l));
                let now = w.now();
                for (lane, &outcome) in outcomes.iter().enumerate() {
                    match unpack_outcome(outcome) {
                        Outcome::None => {}
                        Outcome::Abort(reason) => self.exec.abort_lane(lane, now, reason),
                        Outcome::Commit(cts) => self.lane_cts[lane] = cts,
                    }
                }
                self.phase = Phase_::ClearFlag;
                StepOutcome::Running
            }
            Phase_::ClearFlag => {
                w.set_phase(Phase::WaitServer.id());
                let leader = self.leader_lane();
                let dup = w.fault_plan().is_some_and(|p| {
                    p.duplicate_request(self.fault_channel, self.slot as u64, self.cur_seq)
                });
                if dup {
                    // Injected duplicate delivery: instead of releasing the
                    // mailbox, re-post the already-served request. The
                    // receiver recognises the stale seq, suppresses it, and
                    // re-arms the response, which this client ignores via the
                    // seq-echo check before its next fresh batch overwrites
                    // the slot.
                    self.exec
                        .metrics
                        .record_fault(FaultEvent::DuplicateInjected, w.now());
                    w.global_write1_ord(
                        leader,
                        self.proto.mailboxes().status_addr(self.slot),
                        STATUS_REQUEST,
                        MemOrder::Release,
                    );
                } else {
                    // Release: hands the mailbox (and its outcome words) back
                    // to the protocol for the next round.
                    w.global_write1_ord(
                        leader,
                        self.proto.mailboxes().status_addr(self.slot),
                        STATUS_EMPTY,
                        MemOrder::Release,
                    );
                }
                let committed = self.committed_mask();
                self.phase = if committed == 0 {
                    // Whole batch aborted (or OnlyCs with no survivors).
                    Phase_::FinishRound
                } else if self.variant.client_write_back() {
                    Phase_::WriteBack { widx: 0, sub: 0 }
                } else {
                    // OnlyCs: the server already wrote back and bumped GTS.
                    Phase_::FinishRound
                };
                StepOutcome::Running
            }
            Phase_::WriteBack { widx, sub } => {
                w.set_phase(Phase::WriteBack.id());
                let committed = self.committed_mask();
                // Lanes that still have a version to apply at this index.
                let mut mask = 0u32;
                for l in 0..WARP_LANES {
                    if committed & (1 << l) != 0 && widx < self.exec.lanes[l].ws.len() {
                        mask |= 1 << l;
                    }
                }
                if mask == 0 {
                    // Write-back complete: compute the batch window.
                    let ctss: Vec<u64> = (0..WARP_LANES)
                        .filter(|&l| committed & (1 << l) != 0)
                        .map(|l| self.lane_cts[l])
                        .collect();
                    let (base, n) = steps::batch_window(&ctss);
                    debug_assert!(
                        steps::window_is_dense(&ctss),
                        "server must assign consecutive cts within a batch"
                    );
                    w.alu(full_mask(), 2);
                    self.phase = Phase_::GtsWait { base, n };
                    return StepOutcome::Running;
                }
                let heap = self.heap.clone();
                let lanes = &self.exec.lanes;
                match sub {
                    0 => {
                        // Acquire: pairs with other committers' head updates.
                        let heads = w.global_read_ord(
                            mask,
                            |l| heap.head_addr(lanes[l].ws[widx].0),
                            MemOrder::Acquire,
                        );
                        for (l, &head) in heads.iter().enumerate() {
                            if mask & (1 << l) != 0 {
                                self.lane_head[l] = head;
                            }
                        }
                        self.phase = Phase_::WriteBack { widx, sub: 1 };
                    }
                    1 => {
                        let lane_head = self.lane_head;
                        let lane_cts = self.lane_cts;
                        // Release: a reader that probes this ring slot
                        // re-checks the packed timestamp, so the overwrite of
                        // the oldest version is an intended race.
                        w.global_write_ord(
                            mask,
                            |l| {
                                let (item, _) = lanes[l].ws[widx];
                                heap.version_addr(item, heap.next_slot(lane_head[l]))
                            },
                            |l| {
                                let (_, value) = lanes[l].ws[widx];
                                stm_core::vbox::pack_version(lane_cts[l], value)
                            },
                            MemOrder::Release,
                        );
                        self.phase = Phase_::WriteBack { widx, sub: 2 };
                    }
                    _ => {
                        let lane_head = self.lane_head;
                        // Release: publishes the version written in sub-step 1
                        // to readers that acquire the head.
                        w.global_write_ord(
                            mask,
                            |l| heap.head_addr(lanes[l].ws[widx].0),
                            |l| heap.next_slot(lane_head[l]),
                            MemOrder::Release,
                        );
                        self.phase = Phase_::WriteBack {
                            widx: widx + 1,
                            sub: 0,
                        };
                    }
                }
                StepOutcome::Running
            }
            Phase_::GtsWait { base, n } => {
                w.set_phase(Phase::WaitGts.id());
                if self.gts_wait_start.is_none() {
                    self.gts_wait_start = Some(w.now());
                }
                if self.skip_gts_wait {
                    // Seeded bug: publish without taking our turn.
                    self.gts_wait_start = None;
                    self.phase = Phase_::GtsBump { base, n };
                    return StepOutcome::Running;
                }
                let leader = self.leader_lane();
                // Acquire: pairs with the previous batch's GTS bump, making
                // its write-back visible before ours is published.
                let gts = w.global_read1_ord(leader, self.gts_addr, MemOrder::Acquire);
                if steps::gts_turn_reached(gts, base) {
                    let now = w.now();
                    let started = self.gts_wait_start.take().unwrap_or(now);
                    self.exec
                        .metrics
                        .gts_stall
                        .push(now, now.saturating_sub(started));
                    self.phase = Phase_::GtsBump { base, n };
                } else {
                    debug_assert!(gts < base, "GTS overtook this batch");
                    w.poll_wait();
                }
                StepOutcome::Running
            }
            Phase_::GtsBump { base, n } => {
                w.set_phase(Phase::WriteBack.id());
                let leader = self.leader_lane();
                // One increment by n publishes the whole batch at once.
                // Release: snapshot readers acquire the GTS and must see
                // every version this warp wrote back.
                w.global_write1_ord(
                    leader,
                    self.gts_addr,
                    steps::gts_publish_value(base, n),
                    MemOrder::Release,
                );
                self.phase = Phase_::FinishRound;
                StepOutcome::Running
            }
            Phase_::FinishRound => {
                w.set_phase(Phase::Execution.id());
                let now = w.now();
                let committed = self.committed_mask();
                for lane in 0..WARP_LANES {
                    if committed & (1 << lane) != 0 {
                        let snapshot = self.exec.lanes[lane].snapshot;
                        let cts = self.lane_cts[lane];
                        self.exec.commit_lane(lane, now, Some(cts), snapshot);
                        self.lane_cts[lane] = 0;
                    }
                }
                w.alu(full_mask(), 1);
                self.phase = Phase_::Begin;
                StepOutcome::Running
            }
            Phase_::SignalDone => {
                w.set_phase(Phase::Idle.id());
                let leader = self.leader_lane();
                w.global_atomic_add(leader, self.done_addr, 1);
                self.phase = Phase_::Finished;
                StepOutcome::Running
            }
            Phase_::Finished => StepOutcome::Done,
        }
    }
}
