//! The commit server: a dedicated SM running one **receiver warp** (polls
//! client mailboxes, dispatches batches) and several **worker warps**
//! (validate batches against the shared-memory ATR, reserve commit
//! timestamps with a single atomic per batch, insert the entries, reply).
//!
//! Everything latency-critical — the ATR, the dispatch queue, `next_cts` —
//! lives in the server SM's shared memory; only the request/response
//! payloads and (for the OnlyCs ablation) the write-back touch global
//! memory. This is the half of CSMV's design that turns the commit
//! bottleneck of JVSTM-GPU's global-memory ATR into on-chip traffic.

use gpu_sim::channel::{STATUS_CLAIMED, STATUS_REQUEST, STATUS_RESPONSE};
use gpu_sim::{
    full_mask, single_lane, Mask, MemOrder, StepOutcome, WarpCtx, WarpProgram, WARP_LANES,
};
use stm_core::mv_exec::unpack_ws_entry;
use stm_core::{AbortReason, FaultEvent, MetricsReport, Phase, VBoxHeap};

use crate::atr::SharedAtr;
use crate::protocol::{pack_abort, pack_commit, CommitProtocol, OUTCOME_NONE};
use crate::steps::{self, ReserveOutcome, TagState};
use crate::variant::CsmvVariant;

/// Shared-memory control block of the server SM: the dispatch queue plus the
/// shutdown flag.
#[derive(Debug, Clone)]
pub struct ServerControl {
    q_head: u64,
    q_tail: u64,
    q_base: u64,
    q_cap: u64,
    shutdown: u64,
}

impl ServerControl {
    /// Allocate the control block in `sm`'s shared memory. The queue is
    /// sized to the client count (each client has at most one outstanding
    /// request, so it can never overflow).
    pub fn alloc(dev: &mut gpu_sim::Device, sm: usize, num_clients: usize) -> Self {
        Self::alloc_with_queue(dev, sm, num_clients.max(1))
    }

    /// Allocate the control block with an explicit dispatch-queue capacity.
    /// A capacity below the client count makes queue-full rejections
    /// reachable (the receiver then refuses overflowing batches with
    /// [`stm_core::AbortReason::ServerQueueFull`]).
    pub fn alloc_with_queue(dev: &mut gpu_sim::Device, sm: usize, q_cap: usize) -> Self {
        assert!(q_cap >= 1);
        let q_head = dev.alloc_shared(sm, 1);
        let q_tail = dev.alloc_shared(sm, 1);
        let shutdown = dev.alloc_shared(sm, 1);
        let q_cap = q_cap as u64;
        let q_base = dev.alloc_shared(sm, q_cap as usize);
        Self {
            q_head,
            q_tail,
            q_base,
            q_cap,
            shutdown,
        }
    }

    /// Dispatch-queue capacity in entries.
    pub(crate) fn q_capacity(&self) -> u64 {
        self.q_cap
    }

    /// Address of the queue-head word.
    pub(crate) fn q_head_addr(&self) -> u64 {
        self.q_head
    }

    /// Address of the queue-tail word.
    pub(crate) fn q_tail_addr(&self) -> u64 {
        self.q_tail
    }

    /// Address of the shutdown flag.
    pub(crate) fn shutdown_addr(&self) -> u64 {
        self.shutdown
    }

    /// Address of queue entry `idx`.
    pub(crate) fn q_entry_addr(&self, idx: u64) -> u64 {
        self.q_base + idx % self.q_cap
    }
}

// ---------------------------------------------------------------------------
// Receiver warp
// ---------------------------------------------------------------------------

/// The receiver warp: one coalesced status read covers 32 mailboxes; found
/// requests are claimed and pushed onto the shared-memory dispatch queue.
pub struct ReceiverWarp {
    proto: CommitProtocol,
    ctl: ServerControl,
    num_clients: usize,
    done_addr: u64,
    /// Next chunk of 32 mailboxes to poll.
    chunk: usize,
    /// Requests found since the last full sweep.
    found_in_sweep: bool,
    /// Local tail copy (the receiver is the only producer).
    tail: u64,
    /// Last batch seq received per slot (0 = none yet). A re-polled REQUEST
    /// carrying the same seq is a duplicate: the receiver re-arms the
    /// already-written response instead of dispatching it again, giving the
    /// protocol at-most-once batch processing (see `gpu_sim::channel`).
    last_seq: Vec<u64>,
    /// Response re-send count per slot for the current seq, folded into the
    /// fault plan's drop decision so retried re-arms re-roll.
    resend_idx: Vec<u32>,
    /// Fault-domain channel id (partition index in multi-server setups).
    fault_channel: u64,
    /// Optional liveness word: the receiver stamps the current cycle here on
    /// every poll sweep so clients can detect a crashed partition.
    heartbeat: Option<u64>,
    /// Seeded bug (see [`ReceiverWarp::inject_plain_seq_read`]).
    #[cfg(feature = "seeded-bugs")]
    bug_plain_seq_read: bool,
    /// Receiver-side observability: duplicate suppressions.
    pub metrics: MetricsReport,
    st: RState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RState {
    Poll,
    /// Read the batch seq words of freshly seen REQUEST slots to separate
    /// new batches from duplicate re-posts.
    ReadSeq(Vec<usize>),
    /// Read the response seq echoes of suspected duplicates: echo == seq
    /// means the response is complete and can simply be re-armed.
    ReadEcho {
        fresh: Vec<usize>,
        dups: Vec<(usize, u64)>,
    },
    /// Re-arm the RESPONSE flag of fully-processed duplicate slots.
    Rearm {
        fresh: Vec<usize>,
        rearm: Vec<usize>,
    },
    Claim(Vec<usize>),
    /// Read the queue head to learn how much space is left.
    ReadHead(Vec<usize>),
    /// Queue full: read the overflowing slot's headers to learn which lanes
    /// were committing (they get the queue-full abort, the rest get NONE).
    RejectHdr {
        fits: Vec<usize>,
        rejected: Vec<usize>,
    },
    /// Write the queue-full abort outcomes for the first rejected slot.
    RejectOutcomes {
        fits: Vec<usize>,
        rejected: Vec<usize>,
        committing: Mask,
    },
    /// Write the rejected slot's response seq echo (the client only accepts
    /// a RESPONSE whose echo matches its in-flight seq).
    RejectEcho {
        fits: Vec<usize>,
        rejected: Vec<usize>,
    },
    /// Flip the rejected slot's status to RESPONSE and move on.
    RejectStatus {
        fits: Vec<usize>,
        rejected: Vec<usize>,
    },
    Push(Vec<usize>),
    PushTail(u64),
    CheckDone,
    Shutdown,
    Finished,
}

impl ReceiverWarp {
    /// Build the receiver.
    pub fn new(
        proto: CommitProtocol,
        ctl: ServerControl,
        num_clients: usize,
        done_addr: u64,
    ) -> Self {
        Self {
            proto,
            ctl,
            num_clients,
            done_addr,
            chunk: 0,
            found_in_sweep: false,
            tail: 0,
            last_seq: vec![0; num_clients],
            resend_idx: vec![1; num_clients],
            fault_channel: 0,
            heartbeat: None,
            #[cfg(feature = "seeded-bugs")]
            bug_plain_seq_read: false,
            metrics: MetricsReport::default(),
            st: RState::Poll,
        }
    }

    /// Seed the PR 4 protocol bug for checker-validation tests: the sweep
    /// reads the batch seq words with a *plain* (unordered) access, racing
    /// a timed-out client's recovery resend. The race detector must flag
    /// the first such read under a fault plan that forces a resend.
    #[cfg(feature = "seeded-bugs")]
    pub fn inject_plain_seq_read(&mut self) {
        self.bug_plain_seq_read = true;
    }

    fn plain_seq_read(&self) -> bool {
        #[cfg(feature = "seeded-bugs")]
        {
            self.bug_plain_seq_read
        }
        #[cfg(not(feature = "seeded-bugs"))]
        {
            false
        }
    }

    /// Set the fault-domain channel id (multi-server partition index).
    pub fn set_fault_channel(&mut self, channel: u64) {
        self.fault_channel = channel;
    }

    /// Enable the liveness heartbeat: the receiver writes the current cycle
    /// to `addr` on every poll sweep. Clients treat a stale value as a dead
    /// partition (see `multi::MultiClient`).
    pub fn set_heartbeat(&mut self, addr: u64) {
        self.heartbeat = Some(addr);
    }

    fn num_chunks(&self) -> usize {
        self.num_clients.div_ceil(WARP_LANES)
    }

    /// Current state, for diagnostics.
    pub fn debug_state(&self) -> String {
        format!("{:?} chunk={} tail={}", self.st, self.chunk, self.tail)
    }
}

impl WarpProgram for ReceiverWarp {
    fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
        w.set_phase(Phase::Receive.id());
        match std::mem::replace(&mut self.st, RState::Poll) {
            RState::Poll => {
                if let Some(hb) = self.heartbeat {
                    // Release so a client reading a fresh heartbeat also sees
                    // every response this receiver re-armed before it.
                    w.global_write1_ord(0, hb, w.now(), MemOrder::Release);
                }
                let lo = self.chunk * WARP_LANES;
                let n = (self.num_clients - lo).min(WARP_LANES);
                let mut mask: Mask = 0;
                for l in 0..n {
                    mask |= 1 << l;
                }
                let proto = &self.proto;
                // Acquire: seeing REQUEST makes the client's headers/payload
                // visible to the worker that will process the batch.
                let statuses = w.global_read_ord(
                    mask,
                    |l| proto.mailboxes().status_addr(lo + l),
                    MemOrder::Acquire,
                );
                let found: Vec<usize> = (0..n)
                    .filter(|&l| statuses[l] == STATUS_REQUEST)
                    .map(|l| lo + l)
                    .collect();
                self.chunk += 1;
                let wrapped = self.chunk >= self.num_chunks();
                if wrapped {
                    self.chunk = 0;
                }
                if !found.is_empty() {
                    self.found_in_sweep = true;
                    self.st = RState::ReadSeq(found);
                } else {
                    // An empty chunk is pure polling: rewind the progress
                    // accounting so an idle receiver cannot keep the
                    // stall watchdog from firing.
                    w.poll_wait();
                    if wrapped {
                        let had_any = std::mem::take(&mut self.found_in_sweep);
                        if !had_any {
                            self.st = RState::CheckDone;
                        } else {
                            self.st = RState::Poll;
                        }
                    } else {
                        self.st = RState::Poll;
                    }
                }
                StepOutcome::Running
            }
            RState::ReadSeq(slots) => {
                let mut mask: Mask = 0;
                for l in 0..slots.len() {
                    mask |= 1 << l;
                }
                let proto = &self.proto;
                // Acquire: seq words are control plane — a timed-out client
                // may rewrite one concurrently with this sweep (recovery
                // resend), so reads are ordered like the status word's.
                let seqs = if self.plain_seq_read() {
                    // Seeded bug: the unordered read races recovery resends.
                    // xtask-lint: allow (seeded-bugs mutation under test)
                    w.global_read(mask, |l| proto.req_seq_addr(slots[l]))
                } else {
                    w.global_read_ord(mask, |l| proto.req_seq_addr(slots[l]), MemOrder::Acquire)
                };
                let mut fresh = Vec::new();
                let mut dups = Vec::new();
                for (l, &slot) in slots.iter().enumerate() {
                    let seq = seqs[l];
                    if steps::is_duplicate_batch(seq, self.last_seq[slot]) {
                        // Same seq as last time: a timed-out client re-post.
                        dups.push((slot, seq));
                    } else {
                        self.last_seq[slot] = seq;
                        self.resend_idx[slot] = 1;
                        fresh.push(slot);
                    }
                }
                self.st = if !dups.is_empty() {
                    RState::ReadEcho { fresh, dups }
                } else if !fresh.is_empty() {
                    RState::Claim(fresh)
                } else {
                    RState::Poll
                };
                StepOutcome::Running
            }
            RState::ReadEcho { fresh, dups } => {
                let mut mask: Mask = 0;
                for l in 0..dups.len() {
                    mask |= 1 << l;
                }
                let proto = &self.proto;
                // Acquire: an echo equal to the seq certifies the worker's
                // response payload for that batch is complete.
                let echoes =
                    w.global_read_ord(mask, |l| proto.resp_seq_addr(dups[l].0), MemOrder::Acquire);
                let now = w.now();
                let mut rearm = Vec::new();
                for (l, &(slot, seq)) in dups.iter().enumerate() {
                    if steps::response_certified(echoes[l], seq) {
                        // Already processed: suppress the duplicate and just
                        // re-deliver the response.
                        self.metrics
                            .record_fault(FaultEvent::DuplicateSuppressed, now);
                        rearm.push(slot);
                    }
                    // echo != seq: a worker still owns the batch — leave the
                    // slot alone; the worker's RESPONSE flip will land later.
                }
                self.st = if !rearm.is_empty() {
                    RState::Rearm { fresh, rearm }
                } else if !fresh.is_empty() {
                    RState::Claim(fresh)
                } else {
                    RState::Poll
                };
                StepOutcome::Running
            }
            RState::Rearm { fresh, mut rearm } => {
                let slot = rearm.remove(0);
                let seq = self.last_seq[slot];
                let send_idx = self.resend_idx[slot];
                self.resend_idx[slot] = send_idx.saturating_add(1);
                let dropped = w.fault_plan().is_some_and(|p| {
                    p.drop_response(self.fault_channel, slot as u64, seq, send_idx)
                });
                if dropped {
                    // The re-delivery is lost in transit: pay the write cost
                    // without flipping the flag (idempotent echo rewrite).
                    w.global_write1_ord(0, self.proto.resp_seq_addr(slot), seq, MemOrder::Release);
                } else {
                    // Release: re-publishes the completed response.
                    w.global_write1_ord(
                        0,
                        self.proto.mailboxes().status_addr(slot),
                        STATUS_RESPONSE,
                        MemOrder::Release,
                    );
                }
                self.st = if !rearm.is_empty() {
                    RState::Rearm { fresh, rearm }
                } else if !fresh.is_empty() {
                    RState::Claim(fresh)
                } else {
                    RState::Poll
                };
                StepOutcome::Running
            }
            RState::Claim(slots) => {
                let mut mask: Mask = 0;
                for l in 0..slots.len() {
                    mask |= 1 << l;
                }
                let proto = &self.proto;
                // Release: marks the slots as owned by the server side.
                w.global_write_ord(
                    mask,
                    |l| proto.mailboxes().status_addr(slots[l]),
                    |_| STATUS_CLAIMED,
                    MemOrder::Release,
                );
                self.st = RState::ReadHead(slots);
                StepOutcome::Running
            }
            RState::ReadHead(slots) => {
                // Acquire: pairs with the workers' head-CAS releases; the
                // receiver is the only producer, so `tail` is its own copy.
                let head = w.shared_read1_ord(0, self.ctl.q_head_addr(), MemOrder::Acquire);
                let used = self.tail - head;
                let free = (self.ctl.q_capacity() - used) as usize;
                if slots.len() <= free {
                    self.st = RState::Push(slots);
                } else {
                    let mut fits = slots;
                    let rejected = fits.split_off(free);
                    self.st = RState::RejectHdr { fits, rejected };
                }
                StepOutcome::Running
            }
            RState::RejectHdr { fits, rejected } => {
                let slot = rejected[0];
                let proto = &self.proto;
                let hdrs = w.global_read(full_mask(), |l| proto.hdr_a_addr(slot, l));
                let mut committing: Mask = 0;
                for (l, &h) in hdrs.iter().enumerate() {
                    if CommitProtocol::unpack_hdr_a(h).0 {
                        committing |= 1 << l;
                    }
                }
                self.st = RState::RejectOutcomes {
                    fits,
                    rejected,
                    committing,
                };
                StepOutcome::Running
            }
            RState::RejectOutcomes {
                fits,
                rejected,
                committing,
            } => {
                let slot = rejected[0];
                let proto = &self.proto;
                let word = pack_abort(AbortReason::ServerQueueFull);
                w.global_write(
                    full_mask(),
                    |l| proto.outcome_addr(slot, l),
                    |l| {
                        if committing & (1 << l) != 0 {
                            word
                        } else {
                            OUTCOME_NONE
                        }
                    },
                );
                self.st = RState::RejectEcho { fits, rejected };
                StepOutcome::Running
            }
            RState::RejectEcho { fits, rejected } => {
                let slot = rejected[0];
                // The queue-full response is complete once its echo matches;
                // Release pairs with the client's echo-check acquire.
                w.global_write1_ord(
                    0,
                    self.proto.resp_seq_addr(slot),
                    self.last_seq[slot],
                    MemOrder::Release,
                );
                self.st = RState::RejectStatus { fits, rejected };
                StepOutcome::Running
            }
            RState::RejectStatus { fits, mut rejected } => {
                let slot = rejected.remove(0);
                // Release: publishes the queue-full outcomes to the client.
                w.global_write1_ord(
                    0,
                    self.proto.mailboxes().status_addr(slot),
                    STATUS_RESPONSE,
                    MemOrder::Release,
                );
                self.st = if !rejected.is_empty() {
                    RState::RejectHdr { fits, rejected }
                } else if !fits.is_empty() {
                    RState::Push(fits)
                } else {
                    RState::Poll
                };
                StepOutcome::Running
            }
            RState::Push(slots) => {
                let mut mask: Mask = 0;
                for l in 0..slots.len() {
                    mask |= 1 << l;
                }
                let ctl = &self.ctl;
                let tail = self.tail;
                // Release: queue entries are handed to workers, which acquire
                // them via the tail/entry reads; slot reuse after wrap-around
                // is ordered by the consumed entry itself.
                w.shared_write_ord(
                    mask,
                    |l| ctl.q_entry_addr(tail + l as u64),
                    |l| slots[l] as u64,
                    MemOrder::Release,
                );
                self.st = RState::PushTail(slots.len() as u64);
                StepOutcome::Running
            }
            RState::PushTail(k) => {
                self.tail += k;
                // Release: publishes the entries written above to the workers.
                w.shared_write1_ord(0, self.ctl.q_tail_addr(), self.tail, MemOrder::Release);
                self.st = RState::Poll;
                StepOutcome::Running
            }
            RState::CheckDone => {
                // Acquire: pairs with the clients' done-counter increments.
                let done = w.global_read1_ord(0, self.done_addr, MemOrder::Acquire);
                if done as usize >= self.num_clients {
                    self.st = RState::Shutdown;
                } else {
                    w.poll_wait();
                    self.st = RState::Poll;
                }
                StepOutcome::Running
            }
            RState::Shutdown => {
                // Release: workers acquire the flag in their Pop read.
                w.shared_write1_ord(0, self.ctl.shutdown_addr(), 1, MemOrder::Release);
                self.st = RState::Finished;
                StepOutcome::Running
            }
            RState::Finished => StepOutcome::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker warp
// ---------------------------------------------------------------------------

/// One transaction of a batch under commit.
#[derive(Debug, Clone)]
struct TxD {
    /// Client-warp lane the transaction came from.
    lane: usize,
    snapshot: u64,
    rs_len: usize,
    ws_len: usize,
    /// Cached read-set items (fetched from the request payload).
    rs_items: Vec<u64>,
    /// Cached write-set `(item, value)` pairs.
    ws_pairs: Vec<(u64, u64)>,
    /// Still passing validation.
    valid: bool,
    /// Why validation refused the transaction (meaningful when `!valid`).
    reason: AbortReason,
    /// Commit timestamps `(snapshot, validated_to]` have been checked.
    validated_to: u64,
    /// Assigned commit timestamp (0 until reserved).
    cts: u64,
}

impl TxD {
    fn items_to_check(&self) -> impl Iterator<Item = u64> + '_ {
        self.rs_items
            .iter()
            .copied()
            .chain(self.ws_pairs.iter().map(|&(i, _)| i))
    }
}

/// Outcome of reading one ATR chunk.
enum ChunkRead {
    /// All entries published: per-entry `(ws_len, items)`.
    Ready(Vec<(u64, Vec<u64>)>),
    /// Some entry is still being written; poll.
    InFlight,
    /// Some needed entry was recycled; the validating snapshot is too old.
    Recycled,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum WState {
    /// Read queue head/tail and the shutdown flag.
    Pop,
    /// Try to claim queue entry `head`.
    PopCas {
        head: u64,
    },
    /// Read the claimed queue entry.
    ReadEntry {
        head: u64,
    },
    /// Read the batch's sequence number (echoed into the response).
    ReadBatchSeq,
    /// Read the batch's A headers.
    ReadHdrA,
    /// Read the batch's B headers.
    ReadHdrB,
    /// Fetch the transactions' read/write-sets from the request payload.
    Fetch,
    /// Read `next_cts` to fix the validation target.
    ReadTarget,
    /// Collaborative validation: tx `txi`, ATR chunk starting at cts `lo`.
    CvChunk {
        txi: usize,
        lo: u64,
        target: u64,
    },
    /// Independent (NoCv) validation: every lane walks its own
    /// transaction's window at its own cursor.
    NcWalk {
        target: u64,
    },
    /// Reserve `n_valid` commit timestamps with one CAS.
    Reserve {
        target: u64,
    },
    /// Write the reserved entries' item words (word index `widx`).
    InsertItems {
        base: u64,
        widx: usize,
    },
    /// Write the entries' `ws_len` words.
    InsertLens {
        base: u64,
    },
    /// Publish the entries by writing their cts tags.
    InsertCts {
        base: u64,
    },
    /// OnlyCs: serial per-transaction processing, tx `txi`.
    ScValidate {
        txi: usize,
        lo: u64,
        target: u64,
    },
    ScReserve {
        txi: usize,
        target: u64,
    },
    ScInsert {
        txi: usize,
        sub: u8,
    },
    ScWriteBack {
        txi: usize,
        widx: usize,
        sub: u8,
        head: u64,
    },
    ScGts {
        txi: usize,
    },
    /// Write the 32 outcome words back to the client.
    WriteOutcomes,
    /// Write the response seq echo (last payload write before the flip).
    WriteEcho,
    /// Flip the mailbox status to RESPONSE.
    SetResponse,
    /// Retired.
    Finished,
}

/// One worker warp of the commit server.
pub struct WorkerWarp {
    proto: CommitProtocol,
    ctl: ServerControl,
    atr: SharedAtr,
    heap: VBoxHeap,
    gts_addr: u64,
    variant: CsmvVariant,
    slot: usize,
    /// Batch seq of the request being processed (echoed in the response).
    seq: u64,
    /// Fault-domain channel id (partition index in multi-server setups).
    fault_channel: u64,
    txs: Vec<TxD>,
    st: WState,
    /// Seeded bug (see [`WorkerWarp::inject_publish_tag_first`]).
    #[cfg(feature = "seeded-bugs")]
    bug_publish_tag_first: bool,
    /// Server-side observability: batch sizes and ATR occupancy samples.
    pub metrics: MetricsReport,
}

impl WorkerWarp {
    /// Build a worker.
    pub fn new(
        proto: CommitProtocol,
        ctl: ServerControl,
        atr: SharedAtr,
        heap: VBoxHeap,
        gts_addr: u64,
        variant: CsmvVariant,
    ) -> Self {
        Self {
            proto,
            ctl,
            atr,
            heap,
            gts_addr,
            variant,
            slot: 0,
            seq: 0,
            fault_channel: 0,
            txs: Vec::new(),
            st: WState::Pop,
            #[cfg(feature = "seeded-bugs")]
            bug_publish_tag_first: false,
            metrics: MetricsReport::default(),
        }
    }

    /// Set the fault-domain channel id (multi-server partition index).
    pub fn set_fault_channel(&mut self, channel: u64) {
        self.fault_channel = channel;
    }

    /// Seed a protocol bug for checker-validation tests: the insert writes
    /// the publishing cts tag *before* the entry's items and length,
    /// breaking the seqlock discipline — a concurrent validator can read a
    /// published-looking entry with an empty write-set and miss a conflict.
    #[cfg(feature = "seeded-bugs")]
    pub fn inject_publish_tag_first(&mut self) {
        self.bug_publish_tag_first = true;
    }

    fn publish_tag_first(&self) -> bool {
        #[cfg(feature = "seeded-bugs")]
        {
            self.bug_publish_tag_first
        }
        #[cfg(not(feature = "seeded-bugs"))]
        {
            false
        }
    }

    /// Insert-sequence entry point after a won reservation. The healthy
    /// order is items → lens → cts tag (the tag publishes the entry); the
    /// seeded mutation flips the tag to the front.
    fn after_reserve(&self, base: u64) -> WState {
        if self.publish_tag_first() {
            WState::InsertCts { base }
        } else {
            WState::InsertItems { base, widx: 0 }
        }
    }

    /// Read one ATR chunk (≤ 32 entries at cts `lo..lo+32`, bounded by
    /// `target`): lane `j` reads entry `lo + j`. Returns `None` if some
    /// entry is still being written (caller polls), else the per-entry
    /// `(ws_len, items)` list.
    fn read_chunk(&self, w: &mut WarpCtx, lo: u64, target: u64) -> ChunkRead {
        let n = ((target - lo) as usize).min(WARP_LANES);
        let mut mask: Mask = 0;
        for j in 0..n {
            mask |= 1 << j;
        }
        let atr = &self.atr;
        // Acquire: a published tag releases its entry's len/items (seqlock
        // pattern — tag mismatch means retry or spurious abort).
        let tags = w.shared_read_ord(
            mask,
            |j| atr.slot_cts_addr(atr.slot_of(lo + j as u64)),
            MemOrder::Acquire,
        );
        for (j, &tag) in tags.iter().enumerate().take(n) {
            match steps::classify_tag(tag, lo + j as u64) {
                // The ring recycled an entry we still needed: the snapshot
                // fell out of the validation window mid-flight.
                TagState::Recycled => return ChunkRead::Recycled,
                TagState::InFlight => return ChunkRead::InFlight, // poll
                TagState::Published => {}
            }
        }
        // Acquire: slots may be recycled by a later inserter; the tag
        // re-check above makes the race benign.
        let lens = w.shared_read_ord(
            mask,
            |j| atr.slot_len_addr(atr.slot_of(lo + j as u64)),
            MemOrder::Acquire,
        );
        let max_len = (0..n).map(|j| lens[j]).max().unwrap_or(0);
        let mut items: Vec<Vec<u64>> = (0..n)
            .map(|j| Vec::with_capacity(lens[j] as usize))
            .collect();
        for k in 0..max_len {
            let mut kmask: Mask = 0;
            for (j, &len) in lens.iter().enumerate().take(n) {
                if k < len {
                    kmask |= 1 << j;
                }
            }
            let row = w.shared_read_ord(
                kmask,
                |j| atr.slot_item_addr(atr.slot_of(lo + j as u64), k),
                MemOrder::Acquire,
            );
            for j in 0..n {
                if k < lens[j] {
                    items[j].push(row[j]);
                }
            }
        }
        ChunkRead::Ready(
            (0..n)
                .map(|j| (lens[j], std::mem::take(&mut items[j])))
                .collect(),
        )
    }

    /// Conflict test of one transaction against a decoded chunk; charges the
    /// comparison ALU work spread over the warp.
    fn tx_conflicts_with_chunk(
        w: &mut WarpCtx,
        tx: &TxD,
        chunk: &[(u64, Vec<u64>)],
        lanes_sharing_work: u64,
    ) -> bool {
        let total_items: u64 = chunk.iter().map(|(l, _)| *l).sum();
        let compares = (tx.rs_len + tx.ws_len) as u64 * total_items.max(1);
        w.alu(full_mask(), (compares / lanes_sharing_work).max(1));
        steps::footprint_conflicts(tx.items_to_check(), chunk)
    }

    /// Next still-valid transaction index at or after `from`.
    fn next_valid(&self, from: usize) -> Option<usize> {
        (from..self.txs.len()).find(|&i| self.txs[i].valid)
    }

    /// Count of transactions that passed validation.
    fn n_valid(&self) -> u64 {
        self.txs.iter().filter(|t| t.valid).count() as u64
    }

    /// After target moved (CAS lost): arm revalidation of the delta window.
    fn start_validation(&mut self, target: u64) -> WState {
        // Window check: a snapshot too far behind the ring can't validate.
        for tx in self.txs.iter_mut() {
            if tx.valid && !self.atr.snapshot_in_window(tx.snapshot, target) {
                tx.valid = false; // spurious (capacity) abort
                tx.reason = AbortReason::AtrWindowOverflow;
            }
        }
        match self.variant {
            CsmvVariant::Full => match self.next_valid(0) {
                Some(txi) => {
                    let lo = self.txs[txi].validated_to + 1;
                    if lo >= target {
                        self.advance_cv(txi, target)
                    } else {
                        WState::CvChunk { txi, lo, target }
                    }
                }
                None => WState::Reserve { target },
            },
            CsmvVariant::NoCv => {
                if self
                    .txs
                    .iter()
                    .any(|t| t.valid && t.validated_to + 1 < target)
                {
                    WState::NcWalk { target }
                } else {
                    WState::Reserve { target }
                }
            }
            CsmvVariant::OnlyCs => unreachable!("OnlyCs uses the serial path"),
        }
    }

    /// Move collaborative validation to the next tx (or to Reserve).
    fn advance_cv(&mut self, txi: usize, target: u64) -> WState {
        self.txs[txi].validated_to = target - 1;
        match self.next_valid(txi + 1) {
            Some(next) => {
                let lo = self.txs[next].validated_to + 1;
                if lo >= target {
                    self.advance_cv(next, target)
                } else {
                    WState::CvChunk {
                        txi: next,
                        lo,
                        target,
                    }
                }
            }
            None => WState::Reserve { target },
        }
    }
}

impl WarpProgram for WorkerWarp {
    fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
        match std::mem::replace(&mut self.st, WState::Pop) {
            WState::Pop => {
                w.set_phase(Phase::ServerIdle.id());
                let ctl = &self.ctl;
                // Acquire: pairs with the receiver's tail/shutdown releases.
                let words = w.shared_read_ord(
                    0b111,
                    |l| match l {
                        0 => ctl.q_head_addr(),
                        1 => ctl.q_tail_addr(),
                        _ => ctl.shutdown_addr(),
                    },
                    MemOrder::Acquire,
                );
                let (head, tail, shutdown) = (words[0], words[1], words[2]);
                if head == tail {
                    if shutdown != 0 {
                        self.st = WState::Finished;
                        return StepOutcome::Done;
                    }
                    w.poll_wait();
                    self.st = WState::Pop;
                } else {
                    self.st = WState::PopCas { head };
                }
                StepOutcome::Running
            }
            WState::PopCas { head } => {
                w.set_phase(Phase::ServerIdle.id());
                let old = w.shared_cas1(0, self.ctl.q_head_addr(), head, head + 1);
                self.st = if old == head {
                    WState::ReadEntry { head }
                } else {
                    WState::Pop
                };
                StepOutcome::Running
            }
            WState::ReadEntry { head } => {
                w.set_phase(Phase::ServerIdle.id());
                // Acquire: pairs with the receiver's entry-release write.
                self.slot =
                    w.shared_read1_ord(0, self.ctl.q_entry_addr(head), MemOrder::Acquire) as usize;
                self.st = WState::ReadBatchSeq;
                StepOutcome::Running
            }
            WState::ReadBatchSeq => {
                w.set_phase(Phase::Validation.id());
                // Acquire: control-plane word, ordered against recovery
                // resends (see the receiver's seq sweep).
                self.seq =
                    w.global_read1_ord(0, self.proto.req_seq_addr(self.slot), MemOrder::Acquire);
                self.st = WState::ReadHdrA;
                StepOutcome::Running
            }
            WState::ReadHdrA => {
                w.set_phase(Phase::Validation.id());
                let proto = &self.proto;
                let slot = self.slot;
                let hdrs = w.global_read(full_mask(), |l| proto.hdr_a_addr(slot, l));
                self.txs.clear();
                for (lane, &h) in hdrs.iter().enumerate() {
                    let (committing, snapshot) = CommitProtocol::unpack_hdr_a(h);
                    if committing {
                        self.txs.push(TxD {
                            lane,
                            snapshot,
                            rs_len: 0,
                            ws_len: 0,
                            rs_items: Vec::new(),
                            ws_pairs: Vec::new(),
                            valid: true,
                            reason: AbortReason::ReadValidation,
                            validated_to: snapshot,
                            cts: 0,
                        });
                    }
                }
                self.metrics.batch_sizes.record(self.txs.len() as u64);
                self.st = WState::ReadHdrB;
                StepOutcome::Running
            }
            WState::ReadHdrB => {
                w.set_phase(Phase::Validation.id());
                let proto = &self.proto;
                let slot = self.slot;
                let hdrs = w.global_read(full_mask(), |l| proto.hdr_b_addr(slot, l));
                for tx in self.txs.iter_mut() {
                    let (rs_len, ws_len) = CommitProtocol::unpack_hdr_b(hdrs[tx.lane]);
                    tx.rs_len = rs_len;
                    tx.ws_len = ws_len;
                }
                self.st = WState::Fetch;
                StepOutcome::Running
            }
            WState::Fetch => {
                w.set_phase(Phase::Validation.id());
                let proto = self.proto.clone();
                let slot = self.slot;
                match self.variant {
                    CsmvVariant::Full => {
                        // Broadcast reads: every lane targets the same payload
                        // word (one 128-byte segment per access) — the
                        // coalescing pattern of collaborative validation.
                        let mut sched: Vec<(usize, bool, usize)> = Vec::new();
                        for (ti, tx) in self.txs.iter().enumerate() {
                            for e in 0..tx.rs_len {
                                sched.push((ti, false, e));
                            }
                            for e in 0..tx.ws_len {
                                sched.push((ti, true, e));
                            }
                        }
                        if !sched.is_empty() {
                            let txs = &self.txs;
                            let words = w.global_read_bulk(full_mask(), sched.len(), |_, i| {
                                let (ti, is_ws, e) = sched[i];
                                let lane = txs[ti].lane;
                                if is_ws {
                                    proto.ws_addr(slot, lane, e)
                                } else {
                                    proto.rs_addr(slot, lane, e)
                                }
                            });
                            for (i, &(ti, is_ws, _)) in sched.iter().enumerate() {
                                let word = words[i][0];
                                if is_ws {
                                    self.txs[ti].ws_pairs.push(unpack_ws_entry(word));
                                } else {
                                    self.txs[ti].rs_items.push(word);
                                }
                            }
                        }
                    }
                    CsmvVariant::NoCv | CsmvVariant::OnlyCs => {
                        // Independent fetches: lane j reads its own tx's
                        // entries — scattered, one segment per lane.
                        let rounds = self
                            .txs
                            .iter()
                            .map(|t| t.rs_len + t.ws_len)
                            .max()
                            .unwrap_or(0);
                        if rounds > 0 {
                            let txs = &self.txs;
                            let words = w.global_read_bulk(full_mask(), rounds, |l, i| {
                                // Lane l handles tx l when it exists.
                                if l < txs.len() && i < txs[l].rs_len + txs[l].ws_len {
                                    let tx = &txs[l];
                                    if i < tx.rs_len {
                                        proto.rs_addr(slot, tx.lane, i)
                                    } else {
                                        proto.ws_addr(slot, tx.lane, i - tx.rs_len)
                                    }
                                } else {
                                    // Inactive lanes re-read word 0 of the
                                    // payload (harmless, keeps masks simple).
                                    proto.hdr_a_addr(slot, 0)
                                }
                            });
                            for (l, tx) in self.txs.iter_mut().enumerate() {
                                for (i, row) in words.iter().enumerate().take(tx.rs_len + tx.ws_len)
                                {
                                    let word = row[l];
                                    if i < tx.rs_len {
                                        tx.rs_items.push(word);
                                    } else {
                                        tx.ws_pairs.push(unpack_ws_entry(word));
                                    }
                                }
                            }
                        }
                    }
                }
                self.st = WState::ReadTarget;
                StepOutcome::Running
            }
            WState::ReadTarget => {
                w.set_phase(Phase::Validation.id());
                // Acquire: the reservation CAS on next_cts orders access to
                // the ATR entries below the target.
                let target = w.shared_read1_ord(0, self.atr.next_cts_addr(), MemOrder::Acquire);
                self.metrics
                    .atr_occupancy
                    .push(w.now(), self.atr.occupancy(target));
                self.st = if self.variant == CsmvVariant::OnlyCs {
                    match self.next_valid(0) {
                        Some(txi) => {
                            let lo = self.txs[txi].validated_to + 1;
                            WState::ScValidate { txi, lo, target }
                        }
                        None => WState::WriteOutcomes,
                    }
                } else {
                    self.start_validation(target)
                };
                StepOutcome::Running
            }
            WState::CvChunk { txi, lo, target } => {
                w.set_phase(Phase::Validation.id());
                match self.read_chunk(w, lo, target) {
                    ChunkRead::InFlight => {
                        w.poll_wait();
                        self.st = WState::CvChunk { txi, lo, target };
                    }
                    ChunkRead::Recycled => {
                        // Spurious (capacity) abort, as §V's discussion of the
                        // bounded shared-memory ATR anticipates.
                        self.txs[txi].valid = false;
                        self.txs[txi].reason = AbortReason::AtrWindowOverflow;
                        self.st = match self.next_valid(txi + 1) {
                            Some(next) => {
                                let nlo = self.txs[next].validated_to + 1;
                                if nlo >= target {
                                    self.advance_cv(next, target)
                                } else {
                                    WState::CvChunk {
                                        txi: next,
                                        lo: nlo,
                                        target,
                                    }
                                }
                            }
                            None => WState::Reserve { target },
                        };
                    }
                    ChunkRead::Ready(chunk) => {
                        let conflict = Self::tx_conflicts_with_chunk(w, &self.txs[txi], &chunk, 32);
                        if conflict {
                            self.txs[txi].valid = false;
                            self.txs[txi].reason = AbortReason::ReadValidation;
                            self.st = match self.next_valid(txi + 1) {
                                Some(next) => {
                                    let nlo = self.txs[next].validated_to + 1;
                                    if nlo >= target {
                                        self.advance_cv(next, target)
                                    } else {
                                        WState::CvChunk {
                                            txi: next,
                                            lo: nlo,
                                            target,
                                        }
                                    }
                                }
                                None => WState::Reserve { target },
                            };
                        } else {
                            let nlo = lo + chunk.len() as u64;
                            self.st = if nlo >= target {
                                self.advance_cv(txi, target)
                            } else {
                                WState::CvChunk {
                                    txi,
                                    lo: nlo,
                                    target,
                                }
                            };
                        }
                    }
                }
                StepOutcome::Running
            }
            WState::NcWalk { target } => {
                w.set_phase(Phase::Validation.id());
                // Lane j walks its own tx's window at its own pace: the next
                // entry is cts = validated_to + 1. Different slots per lane ⇒
                // bank conflicts and divergence, the price of
                // non-collaboration.
                let mut mask: Mask = 0;
                let mut ctss = [0u64; WARP_LANES];
                for (j, tx) in self.txs.iter().enumerate() {
                    let cts = tx.validated_to + 1;
                    if tx.valid && cts < target {
                        mask |= 1 << j;
                        ctss[j] = cts;
                    }
                }
                if mask == 0 {
                    self.st = WState::Reserve { target };
                    return StepOutcome::Running;
                }
                let atr = self.atr.clone();
                // Acquire: same seqlock-tag pattern as `read_chunk`.
                let tags = w.shared_read_ord(
                    mask,
                    |j| atr.slot_cts_addr(atr.slot_of(ctss[j])),
                    MemOrder::Acquire,
                );
                let mut in_flight = false;
                for j in 0..WARP_LANES {
                    if mask & (1 << j) == 0 {
                        continue;
                    }
                    match steps::classify_tag(tags[j], ctss[j]) {
                        TagState::Recycled => {
                            // Entry recycled: spurious abort for this lane's
                            // tx.
                            self.txs[j].valid = false;
                            self.txs[j].reason = AbortReason::AtrWindowOverflow;
                            mask &= !(1 << j);
                        }
                        TagState::InFlight => in_flight = true,
                        TagState::Published => {}
                    }
                }
                if in_flight {
                    w.poll_wait();
                    self.st = WState::NcWalk { target };
                    return StepOutcome::Running;
                }
                if mask == 0 {
                    self.st = WState::NcWalk { target };
                    return StepOutcome::Running;
                }
                let lens = w.shared_read_ord(
                    mask,
                    |j| atr.slot_len_addr(atr.slot_of(ctss[j])),
                    MemOrder::Acquire,
                );
                let max_len = (0..WARP_LANES)
                    .filter(|&j| mask & (1 << j) != 0)
                    .map(|j| lens[j])
                    .max()
                    .unwrap_or(0);
                let mut conflict = [false; WARP_LANES];
                let mut compares = 0u64;
                for kk in 0..max_len {
                    let mut kmask: Mask = 0;
                    for (j, &len) in lens.iter().enumerate() {
                        if mask & (1 << j) != 0 && kk < len {
                            kmask |= 1 << j;
                        }
                    }
                    let row = w.shared_read_ord(
                        kmask,
                        |j| atr.slot_item_addr(atr.slot_of(ctss[j]), kk),
                        MemOrder::Acquire,
                    );
                    for (j, tx) in self.txs.iter().enumerate() {
                        if kmask & (1 << j) != 0 {
                            compares = compares.max((tx.rs_len + tx.ws_len) as u64);
                            if tx.items_to_check().any(|e| e == row[j]) {
                                conflict[j] = true;
                            }
                        }
                    }
                }
                // Independent (per-lane, serial) compares: no /32 sharing.
                w.alu(mask, compares.max(1) * max_len.max(1));
                for (j, tx) in self.txs.iter_mut().enumerate() {
                    if mask & (1 << j) != 0 {
                        if conflict[j] {
                            tx.valid = false;
                            tx.reason = AbortReason::ReadValidation;
                        } else {
                            tx.validated_to = ctss[j];
                        }
                    }
                }
                self.st = WState::NcWalk { target };
                StepOutcome::Running
            }
            WState::Reserve { target } => {
                w.set_phase(Phase::RecordInsert.id());
                let n = self.n_valid();
                if n == 0 {
                    self.st = WState::WriteOutcomes;
                    return StepOutcome::Running;
                }
                // Batched insert: a single CAS reserves the whole batch.
                let old = w.shared_cas1(0, self.atr.next_cts_addr(), target, target + n);
                match steps::reserve_outcome(old, target) {
                    ReserveOutcome::Won { base } => {
                        let mut cts = base;
                        for tx in self.txs.iter_mut() {
                            if tx.valid {
                                tx.cts = cts;
                                cts += 1;
                            }
                        }
                        self.st = self.after_reserve(base);
                    }
                    ReserveOutcome::Lost { target } => {
                        // Entries [expected, target) appeared: revalidate the
                        // delta.
                        self.st = self.start_validation(target);
                    }
                }
                StepOutcome::Running
            }
            WState::InsertItems { base, widx } => {
                w.set_phase(Phase::RecordInsert.id());
                let valid: Vec<&TxD> = self.txs.iter().filter(|t| t.valid).collect();
                let max_ws = valid.iter().map(|t| t.ws_len).max().unwrap_or(0);
                if widx >= max_ws {
                    self.st = WState::InsertLens { base };
                    return StepOutcome::Running;
                }
                let mut mask: Mask = 0;
                for (k, tx) in valid.iter().enumerate() {
                    if widx < tx.ws_len {
                        mask |= 1 << k;
                    }
                }
                let atr = self.atr.clone();
                let items: Vec<(u64, u64)> = valid
                    .iter()
                    .map(|t| (t.cts, t.ws_pairs.get(widx).map(|&(i, _)| i).unwrap_or(0)))
                    .collect();
                // Release: recycles a ring slot a validator may still probe;
                // the cts-tag re-check makes that an intended race.
                w.shared_write_ord(
                    mask,
                    |k| atr.slot_item_addr(atr.slot_of(items[k].0), widx as u64),
                    |k| items[k].1,
                    MemOrder::Release,
                );
                self.st = WState::InsertItems {
                    base,
                    widx: widx + 1,
                };
                StepOutcome::Running
            }
            WState::InsertLens { base } => {
                w.set_phase(Phase::RecordInsert.id());
                let valid: Vec<(u64, u64)> = self
                    .txs
                    .iter()
                    .filter(|t| t.valid)
                    .map(|t| (t.cts, t.ws_len as u64))
                    .collect();
                let mut mask: Mask = 0;
                for k in 0..valid.len() {
                    mask |= 1 << k;
                }
                let atr = self.atr.clone();
                w.shared_write_ord(
                    mask,
                    |k| atr.slot_len_addr(atr.slot_of(valid[k].0)),
                    |k| valid[k].1,
                    MemOrder::Release,
                );
                self.st = if self.publish_tag_first() {
                    // Seeded bug: the tag already went out first.
                    WState::WriteOutcomes
                } else {
                    WState::InsertCts { base }
                };
                StepOutcome::Running
            }
            WState::InsertCts { base } => {
                w.set_phase(Phase::RecordInsert.id());
                let valid: Vec<u64> = self.txs.iter().filter(|t| t.valid).map(|t| t.cts).collect();
                let mut mask: Mask = 0;
                for k in 0..valid.len() {
                    mask |= 1 << k;
                }
                let atr = self.atr.clone();
                // Publishing write: validators polling these tags may now
                // read the entries. Release pairs with their tag acquires.
                w.shared_write_ord(
                    mask,
                    |k| atr.slot_cts_addr(atr.slot_of(valid[k])),
                    |k| valid[k],
                    MemOrder::Release,
                );
                let _ = base;
                self.st = if self.publish_tag_first() {
                    // Seeded bug: items and lens follow the published tag.
                    WState::InsertItems { base, widx: 0 }
                } else {
                    WState::WriteOutcomes
                };
                StepOutcome::Running
            }
            // --------------------------------------------------------------
            // OnlyCs: strictly serial per-transaction commit, server-side
            // write-back and GTS publication.
            // --------------------------------------------------------------
            WState::ScValidate { txi, lo, target } => {
                w.set_phase(Phase::Validation.id());
                if !self.atr.snapshot_in_window(self.txs[txi].snapshot, target) {
                    self.txs[txi].valid = false;
                    self.txs[txi].reason = AbortReason::AtrWindowOverflow;
                    self.st = self.sc_next(txi, target);
                    return StepOutcome::Running;
                }
                if lo >= target {
                    self.st = WState::ScReserve { txi, target };
                    return StepOutcome::Running;
                }
                // Single-lane serial walk: one entry per step.
                let atr = self.atr.clone();
                let s = atr.slot_of(lo);
                // Acquire: seqlock tag, as in the parallel paths.
                let tag = w.shared_read1_ord(0, atr.slot_cts_addr(s), MemOrder::Acquire);
                match steps::classify_tag(tag, lo) {
                    TagState::Recycled => {
                        // Entry recycled mid-validation: spurious abort.
                        self.txs[txi].valid = false;
                        self.txs[txi].reason = AbortReason::AtrWindowOverflow;
                        self.st = self.sc_next(txi, target);
                        return StepOutcome::Running;
                    }
                    TagState::InFlight => {
                        w.poll_wait();
                        self.st = WState::ScValidate { txi, lo, target };
                        return StepOutcome::Running;
                    }
                    TagState::Published => {}
                }
                let len = w.shared_read1_ord(0, atr.slot_len_addr(s), MemOrder::Acquire);
                let mut conflict = false;
                for k in 0..len {
                    let item = w.shared_read1_ord(0, atr.slot_item_addr(s, k), MemOrder::Acquire);
                    if self.txs[txi].items_to_check().any(|e| e == item) {
                        conflict = true;
                    }
                }
                w.alu(
                    single_lane(0),
                    ((self.txs[txi].rs_len + self.txs[txi].ws_len) as u64 * len.max(1)).max(1),
                );
                if conflict {
                    self.txs[txi].valid = false;
                    self.txs[txi].reason = AbortReason::ReadValidation;
                    self.st = self.sc_next(txi, target);
                } else {
                    self.txs[txi].validated_to = lo;
                    self.st = WState::ScValidate {
                        txi,
                        lo: lo + 1,
                        target,
                    };
                }
                StepOutcome::Running
            }
            WState::ScReserve { txi, target } => {
                w.set_phase(Phase::RecordInsert.id());
                let old = w.shared_cas1(0, self.atr.next_cts_addr(), target, target + 1);
                if old == target {
                    self.txs[txi].cts = target;
                    self.st = WState::ScInsert { txi, sub: 0 };
                } else {
                    self.st = WState::ScValidate {
                        txi,
                        lo: self.txs[txi].validated_to + 1,
                        target: old,
                    };
                }
                StepOutcome::Running
            }
            WState::ScInsert { txi, sub } => {
                w.set_phase(Phase::RecordInsert.id());
                let tx = &self.txs[txi];
                let s = self.atr.slot_of(tx.cts);
                match sub {
                    0 => {
                        for (k, &(item, _)) in tx.ws_pairs.iter().enumerate() {
                            w.shared_write1_ord(
                                0,
                                self.atr.slot_item_addr(s, k as u64),
                                item,
                                MemOrder::Release,
                            );
                        }
                        if tx.ws_pairs.is_empty() {
                            w.alu(single_lane(0), 1);
                        }
                        self.st = WState::ScInsert { txi, sub: 1 };
                    }
                    1 => {
                        w.shared_write1_ord(
                            0,
                            self.atr.slot_len_addr(s),
                            tx.ws_len as u64,
                            MemOrder::Release,
                        );
                        self.st = WState::ScInsert { txi, sub: 2 };
                    }
                    _ => {
                        // Publishing write (seqlock tag).
                        w.shared_write1_ord(
                            0,
                            self.atr.slot_cts_addr(s),
                            tx.cts,
                            MemOrder::Release,
                        );
                        self.st = WState::ScWriteBack {
                            txi,
                            widx: 0,
                            sub: 0,
                            head: 0,
                        };
                    }
                }
                StepOutcome::Running
            }
            WState::ScWriteBack {
                txi,
                widx,
                sub,
                head,
            } => {
                w.set_phase(Phase::WriteBack.id());
                let tx = &self.txs[txi];
                if widx >= tx.ws_pairs.len() {
                    self.st = WState::ScGts { txi };
                    return StepOutcome::Running;
                }
                let (item, value) = tx.ws_pairs[widx];
                match sub {
                    0 => {
                        // Acquire/Release on head/version words: same
                        // version-ring discipline as the client write-back.
                        let h = w.global_read1_ord(0, self.heap.head_addr(item), MemOrder::Acquire);
                        self.st = WState::ScWriteBack {
                            txi,
                            widx,
                            sub: 1,
                            head: h,
                        };
                    }
                    1 => {
                        let slot = self.heap.next_slot(head);
                        w.global_write1_ord(
                            0,
                            self.heap.version_addr(item, slot),
                            stm_core::vbox::pack_version(tx.cts, value),
                            MemOrder::Release,
                        );
                        self.st = WState::ScWriteBack {
                            txi,
                            widx,
                            sub: 2,
                            head,
                        };
                    }
                    _ => {
                        let slot = self.heap.next_slot(head);
                        w.global_write1_ord(0, self.heap.head_addr(item), slot, MemOrder::Release);
                        self.st = WState::ScWriteBack {
                            txi,
                            widx: widx + 1,
                            sub: 0,
                            head: 0,
                        };
                    }
                }
                StepOutcome::Running
            }
            WState::ScGts { txi } => {
                w.set_phase(Phase::WriteBack.id());
                let cts = self.txs[txi].cts;
                // Acquire/Release GTS turn-taking, as in the client.
                let gts = w.global_read1_ord(0, self.gts_addr, MemOrder::Acquire);
                if steps::gts_turn_reached(gts, cts) {
                    w.global_write1_ord(0, self.gts_addr, cts, MemOrder::Release);
                    let target = cts + 1;
                    self.st = self.sc_next(txi, target);
                } else {
                    w.poll_wait();
                    self.st = WState::ScGts { txi };
                }
                StepOutcome::Running
            }
            WState::WriteOutcomes => {
                w.set_phase(Phase::RecordInsert.id());
                let mut outcomes = [OUTCOME_NONE; WARP_LANES];
                for tx in &self.txs {
                    outcomes[tx.lane] = if tx.valid {
                        pack_commit(tx.cts)
                    } else {
                        pack_abort(tx.reason)
                    };
                }
                let proto = &self.proto;
                let slot = self.slot;
                w.global_write(
                    full_mask(),
                    |l| proto.outcome_addr(slot, l),
                    |l| outcomes[l],
                );
                self.st = WState::WriteEcho;
                StepOutcome::Running
            }
            WState::WriteEcho => {
                w.set_phase(Phase::RecordInsert.id());
                // The echo must land after the outcome words and before the
                // RESPONSE flip: echo == seq certifies the payload is
                // complete (see `gpu_sim::channel`). Release pairs with the
                // receiver's/client's echo-check acquires.
                w.global_write1_ord(
                    0,
                    self.proto.resp_seq_addr(self.slot),
                    self.seq,
                    MemOrder::Release,
                );
                self.st = WState::SetResponse;
                StepOutcome::Running
            }
            WState::SetResponse => {
                w.set_phase(Phase::RecordInsert.id());
                let dropped = w.fault_plan().is_some_and(|p| {
                    p.drop_response(self.fault_channel, self.slot as u64, self.seq, 0)
                });
                if dropped {
                    // Response delivery lost in transit: the payload and echo
                    // are in place, only the flag flip vanishes. The client's
                    // timed-out re-post lets the receiver re-arm the slot
                    // without reprocessing the batch.
                    w.global_write1_ord(
                        0,
                        self.proto.resp_seq_addr(self.slot),
                        self.seq,
                        MemOrder::Release,
                    );
                } else {
                    // Release: publishes the outcome words to the client.
                    w.global_write1_ord(
                        0,
                        self.proto.mailboxes().status_addr(self.slot),
                        STATUS_RESPONSE,
                        MemOrder::Release,
                    );
                }
                self.st = WState::Pop;
                StepOutcome::Running
            }
            WState::Finished => StepOutcome::Done,
        }
    }
}

impl WorkerWarp {
    /// Current state, for diagnostics.
    pub fn debug_state(&self) -> String {
        format!("{:?} slot={} txs={}", self.st, self.slot, self.txs.len())
    }

    /// OnlyCs: advance to the next transaction of the batch (serial).
    fn sc_next(&mut self, txi: usize, target: u64) -> WState {
        match self.next_valid_unprocessed(txi + 1) {
            Some(next) => {
                let lo = self.txs[next].validated_to + 1;
                WState::ScValidate {
                    txi: next,
                    lo,
                    target,
                }
            }
            None => WState::WriteOutcomes,
        }
    }

    /// OnlyCs helper: next valid tx with no cts yet.
    fn next_valid_unprocessed(&self, from: usize) -> Option<usize> {
        (from..self.txs.len()).find(|&i| self.txs[i].valid && self.txs[i].cts == 0)
    }
}
