//! Pure transition functions of the CSMV commit protocol.
//!
//! Every decision the client and server warps make — seqlock-tag
//! classification, conflict detection, duplicate suppression, batch
//! windows, GTS turn-taking — is factored here as a side-effect-free
//! function over plain values. The simulator warps ([`crate::client`],
//! [`crate::server`], [`crate::multi`]) call these for their control
//! decisions, and the `csmv-model` explicit-state model checker calls the
//! *same* functions for its abstract transitions, so the checked model
//! cannot silently drift from the implementation.
//!
//! Nothing in this module touches simulated memory, charges cycles, or
//! records metrics: inputs are values already read, outputs are decisions.

/// Classification of an ATR slot's seqlock tag against the timestamp a
/// validator expects to find there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagState {
    /// The tag matches: the entry is published and its payload readable.
    Published,
    /// The tag is older than expected: the inserter has reserved but not
    /// yet published this entry — the validator must poll.
    InFlight,
    /// The tag is newer than expected: the ring recycled an entry the
    /// validator still needed; its snapshot fell out of the window.
    Recycled,
}

/// Classify a seqlock tag read from an ATR slot. `expected` is the
/// timestamp (single-server: cts; multi-server: local-seq tag) whose entry
/// the validator is trying to read.
#[inline]
pub fn classify_tag(tag: u64, expected: u64) -> TagState {
    use std::cmp::Ordering::*;
    match tag.cmp(&expected) {
        Equal => TagState::Published,
        Less => TagState::InFlight,
        Greater => TagState::Recycled,
    }
}

/// Does a transaction footprint (read-set items chained with write-set
/// items) intersect any of the committed entries' write-set items?
///
/// This is the whole of CSMV validation: a transaction is invalid iff an
/// entry committed after its snapshot wrote something it read or wrote.
pub fn footprint_conflicts<I>(footprint: I, entries: &[(u64, Vec<u64>)]) -> bool
where
    I: IntoIterator<Item = u64>,
{
    for e in footprint {
        for (_, items) in entries {
            if items.contains(&e) {
                return true;
            }
        }
    }
    false
}

/// [`footprint_conflicts`] against a single committed entry's write-set,
/// for validators that scan the window incrementally (borrowing each
/// cached entry in turn instead of materialising an owned entry list per
/// transaction). Checking entries one at a time is equivalent: a
/// footprint conflicts with a window iff it conflicts with some entry in
/// it.
#[inline]
pub fn footprint_hits_entry<I>(footprint: I, items: &[u64]) -> bool
where
    I: IntoIterator<Item = u64>,
{
    footprint.into_iter().any(|e| items.contains(&e))
}

/// Is a snapshot still inside the ATR ring's validation window when the
/// counter stands at `next`? (Entries `(snapshot, next)` must all still be
/// resident; the ring holds `capacity` of them.)
#[inline]
pub fn snapshot_in_window(snapshot: u64, next: u64, capacity: u64) -> bool {
    next - 1 - snapshot <= capacity
}

/// Outcome of a batched commit-timestamp reservation attempt (a CAS of
/// `expected -> expected + n` that observed `observed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// The CAS won: the batch owns `[base, base + n)`.
    Won { base: u64 },
    /// The CAS lost: entries `[expected, target)` appeared concurrently
    /// and must be validated before retrying at `target`.
    Lost { target: u64 },
}

/// Decide a reservation attempt from the CAS's observed old value.
#[inline]
pub fn reserve_outcome(observed: u64, expected: u64) -> ReserveOutcome {
    if observed == expected {
        ReserveOutcome::Won { base: expected }
    } else {
        ReserveOutcome::Lost { target: observed }
    }
}

/// Is a freshly polled REQUEST carrying `seq` a duplicate of the batch the
/// receiver last accepted from that slot (`last_seq`, 0 = none yet)?
///
/// Duplicates arise from recovery resends and injected duplicate
/// deliveries; they must be suppressed, not re-dispatched (at-most-once
/// batch processing).
#[inline]
pub fn is_duplicate_batch(seq: u64, last_seq: u64) -> bool {
    seq != 0 && seq == last_seq
}

/// Does a response-seq echo certify that the response payload for batch
/// `seq` is complete? (The echo is the last payload word written before
/// the RESPONSE flip; clients and the receiver's duplicate sweep both rely
/// on it.)
#[inline]
pub fn response_certified(echo: u64, seq: u64) -> bool {
    echo == seq
}

/// The batch window of a set of granted commit timestamps: `(base, n)`
/// with `base` the smallest cts and `n` the count. `(0, 0)` for an empty
/// set.
pub fn batch_window(ctss: &[u64]) -> (u64, u64) {
    match ctss.iter().min() {
        None => (0, 0),
        Some(&base) => (base, ctss.len() as u64),
    }
}

/// Are the granted timestamps consecutive (`base..base + n`)? The
/// single-server protocol guarantees it (one CAS reserves the whole
/// batch); the client's single GTS bump relies on it.
pub fn window_is_dense(ctss: &[u64]) -> bool {
    let (base, n) = batch_window(ctss);
    ctss.iter().all(|&c| c >= base && c < base + n)
        && ctss.iter().max().is_none_or(|&m| m == base + n - 1)
}

/// GTS turn-taking: may a batch based at `base` publish now? Only when the
/// GTS has reached `base - 1`, i.e. every earlier timestamp is published
/// (§III-B: commits become visible in timestamp order).
#[inline]
pub fn gts_turn_reached(gts: u64, base: u64) -> bool {
    gts + 1 == base
}

/// The value a batch `[base, base + n)` publishes to the GTS: one write
/// makes the whole batch visible.
#[inline]
pub fn gts_publish_value(base: u64, n: u64) -> u64 {
    base + n - 1
}

/// Progressive GTS publication (multi-server): given the current GTS and a
/// warp's unpublished commit timestamps, absorb the run of consecutive
/// timestamps starting at `gts + 1` and return the new GTS (unchanged if
/// it is not this warp's turn). Timestamps `<= gts` are already covered
/// (e.g. by a crash-hole skip) and contribute nothing.
pub fn gts_run(gts: u64, pending: &[u64]) -> u64 {
    let mut new_gts = gts;
    loop {
        match pending.iter().find(|&&c| c == new_gts + 1) {
            Some(_) => new_gts += 1,
            None => return new_gts,
        }
    }
}

/// The version-GC watermark: the minimum over the active reader snapshots,
/// clamped to the GTS (an in-flight registration of a future timestamp can
/// never raise the watermark above the committed frontier). With no active
/// readers the watermark is the GTS itself — everything older than the
/// newest committed version is reclaimable.
pub fn watermark<I>(active_snapshots: I, gts: u64) -> u64
where
    I: IntoIterator<Item = u64>,
{
    active_snapshots.into_iter().fold(gts, |w, s| w.min(s))
}

/// May the oldest retained version of an item be reclaimed (its ring slot
/// recycled) without starving any reader at or above the watermark?
///
/// A snapshot read returns the newest version with `ts <= snapshot`. After
/// the oldest version is gone, a reader at the watermark still succeeds
/// iff the *next*-oldest retained version already covers it.
#[inline]
pub fn recycle_safe(next_oldest_ts: u64, watermark: u64) -> bool {
    next_oldest_ts <= watermark
}

/// Adaptive retention: which versions of one item must survive a GC pass
/// at `watermark`? Keeps the newest version with `ts <= watermark` (the
/// one every snapshot in `[watermark, gts]` at or below it resolves to)
/// plus everything newer. `versions` must be sorted by ascending `ts`;
/// returns the index of the first version to retain (everything before it
/// is reclaimable). This is what makes retention per-object adaptive:
/// write-hot items whose old versions are all below the watermark collapse
/// to (effectively) a single version, while an item pinned by an old
/// registered snapshot keeps its deep history.
pub fn retain_from(versions: &[u64], watermark: u64) -> usize {
    versions
        .iter()
        .rposition(|&ts| ts <= watermark)
        .unwrap_or(0)
}

/// Does any registered reader snapshot *resolve on* the version at `ts`,
/// given that the next-newer retained version is at `next_ts`? A snapshot
/// read returns the newest version `<=` the snapshot, so the version at
/// `ts` is the answer exactly for snapshots in `[ts, next_ts)`. This is
/// the per-version retention test behind adaptive GC: a version no
/// registered snapshot resolves on is reclaimable even when it is above
/// the watermark.
#[inline]
pub fn version_needed<I>(ts: u64, next_ts: u64, readers: I) -> bool
where
    I: IntoIterator<Item = u64>,
{
    readers.into_iter().any(|s| ts <= s && s < next_ts)
}

/// Starvation-freedom escalation: should a reader that has already burned
/// `attempts` of its retry `budget` pin its snapshot (register it and keep
/// re-executing at the same timestamp)? Pinning engages at the half-way
/// point — early enough that the guaranteed-commit path has budget left,
/// late enough that the fast path (fresh snapshot each retry) gets a fair
/// shot first. With no budget there is no exhaustion to outrun, so never.
#[inline]
pub fn should_pin(attempts: u32, budget: Option<u32>) -> bool {
    match budget {
        Some(b) => attempts >= b.div_ceil(2),
        None => false,
    }
}

/// Intra-warp pre-validation: lane `broadcaster` broadcasts its write-set
/// `ws_items`; every *later* committing lane whose read- or write-set
/// intersects it loses (`in_footprint(lane, item)` answers membership).
/// Returns the loser mask. Earlier lanes and already-lost lanes are
/// untouched, so repeated application over broadcasters yields the
/// conflict-free survivor set the server can batch.
pub fn preval_losers(
    broadcaster: usize,
    ws_items: &[u64],
    committing: u32,
    mut in_footprint: impl FnMut(usize, u64) -> bool,
) -> u32 {
    let mut losers: u32 = 0;
    for &item in ws_items {
        for j in (broadcaster + 1)..u32::BITS as usize {
            if committing & (1 << j) == 0 || losers & (1 << j) != 0 {
                continue;
            }
            if in_footprint(j, item) {
                losers |= 1 << j;
            }
        }
    }
    losers
}

/// Pipelined commit admission: may a client start one more *speculative*
/// execution while a batch it already submitted is still awaiting its
/// verdicts or its GTS turn? Depth 1 is the unpipelined protocol (never
/// speculate); depth `d` admits up to `(d - 1) * max_batch` buffered
/// speculative executions behind the single in-flight batch. Recovery's
/// per-client seq certification allows only one *submitted* batch at a
/// time, so the depth knob governs speculation volume, never outstanding
/// submissions.
#[inline]
pub fn pipeline_admissible(
    depth: usize,
    in_flight: bool,
    buffered: usize,
    max_batch: usize,
) -> bool {
    depth > 1 && in_flight && buffered < (depth - 1) * max_batch
}

/// Speculative pre-validation: must a transaction executed speculatively
/// at a pre-write-back snapshot be squashed once the in-flight batch
/// publishes the write-set items `batch_ws`? This is the server's own
/// validation predicate (a transaction is invalid iff a commit after its
/// snapshot wrote something it read *or wrote* — see
/// [`footprint_conflicts`]) applied client-side to the one batch the
/// client itself just published: `true` saves a round-trip the server
/// would reject anyway, and `false` is always safe because server-side
/// ATR validation still covers every other client's commits and
/// intra-batch pre-validation ([`preval_losers`]) covers batch-mates.
pub fn speculative_preval<I>(spec_rs: &[u64], spec_ws: &[u64], batch_ws: I) -> bool
where
    I: IntoIterator<Item = u64>,
{
    batch_ws
        .into_iter()
        .any(|item| spec_rs.contains(&item) || spec_ws.contains(&item))
}

/// Carry-time freshness re-check for a parked speculative execution: may
/// it still be submitted, given the newest committed timestamp of each
/// item in its footprint? This is again the server's validation predicate
/// applied client-side — a transaction is rejected iff some commit after
/// its snapshot touched its footprint — but measured against the *whole
/// published history* (the shared store) rather than one batch's
/// write-set, so it also catches staleness caused by other clients'
/// commits between the speculative execution and the submit. `false`
/// (squash) saves a round-trip the server would reject anyway; `true` is
/// always safe because the server re-validates against its ATR window on
/// arrival.
pub fn spec_carry_fresh<I>(snapshot: u64, footprint_newest: I) -> bool
where
    I: IntoIterator<Item = u64>,
{
    footprint_newest.into_iter().all(|ts| ts <= snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_classification() {
        assert_eq!(classify_tag(5, 5), TagState::Published);
        assert_eq!(classify_tag(4, 5), TagState::InFlight);
        assert_eq!(classify_tag(6, 5), TagState::Recycled);
    }

    #[test]
    fn conflict_is_footprint_intersection() {
        let entries = vec![(2, vec![7, 9]), (1, vec![3])];
        assert!(footprint_conflicts([1, 3].into_iter(), &entries));
        assert!(footprint_conflicts([9].into_iter(), &entries));
        assert!(!footprint_conflicts([4, 5].into_iter(), &entries));
        assert!(!footprint_conflicts(std::iter::empty(), &entries));
    }

    #[test]
    fn window_mirrors_ring_capacity() {
        // next = 10, capacity 4: snapshots 5..=9 validate, 4 does not.
        assert!(snapshot_in_window(5, 10, 4));
        assert!(!snapshot_in_window(4, 10, 4));
    }

    #[test]
    fn reservation_cas_semantics() {
        assert_eq!(reserve_outcome(3, 3), ReserveOutcome::Won { base: 3 });
        assert_eq!(reserve_outcome(7, 3), ReserveOutcome::Lost { target: 7 });
    }

    #[test]
    fn duplicate_batches_need_a_prior_seq() {
        assert!(is_duplicate_batch(4, 4));
        assert!(!is_duplicate_batch(5, 4));
        assert!(!is_duplicate_batch(0, 0)); // nothing received yet
    }

    #[test]
    fn batch_windows() {
        assert_eq!(batch_window(&[]), (0, 0));
        assert_eq!(batch_window(&[4, 2, 3]), (2, 3));
        assert!(window_is_dense(&[4, 2, 3]));
        assert!(window_is_dense(&[]));
        assert!(!window_is_dense(&[2, 4]));
    }

    #[test]
    fn turn_taking() {
        assert!(gts_turn_reached(4, 5));
        assert!(!gts_turn_reached(3, 5));
        assert_eq!(gts_publish_value(5, 3), 7);
    }

    #[test]
    fn progressive_runs() {
        assert_eq!(gts_run(2, &[3, 4, 7]), 4);
        assert_eq!(gts_run(2, &[4, 7]), 2);
        assert_eq!(gts_run(0, &[1]), 1);
        assert_eq!(gts_run(5, &[]), 5);
    }

    #[test]
    fn watermark_is_min_snapshot_clamped_by_gts() {
        assert_eq!(watermark([7, 3, 9], 10), 3);
        assert_eq!(watermark([], 10), 10);
        assert_eq!(watermark([15], 10), 10);
        assert_eq!(watermark([0], 10), 0);
    }

    #[test]
    fn recycle_needs_a_covering_successor() {
        // Versions {2, 5}: dropping 2 is safe iff the watermark reader
        // (snapshot >= watermark) still resolves on 5.
        assert!(recycle_safe(5, 5));
        assert!(recycle_safe(5, 8));
        assert!(!recycle_safe(5, 4));
    }

    #[test]
    fn retention_keeps_the_covering_version_and_everything_newer() {
        let versions = [1, 3, 6, 9];
        // Watermark 6: version 6 covers snapshots 6..9; 1 and 3 go.
        assert_eq!(retain_from(&versions, 6), 2);
        // Watermark 7: still version 6.
        assert_eq!(retain_from(&versions, 7), 2);
        // Watermark below everything: keep all (nothing covers, so the
        // oldest must survive).
        assert_eq!(retain_from(&versions, 0), 0);
        // Watermark above everything: only the newest survives.
        assert_eq!(retain_from(&versions, 100), 3);
        assert_eq!(retain_from(&[], 5), 0);
    }

    #[test]
    fn retained_reads_equal_full_reads_for_covered_snapshots() {
        // The retention contract, checked exhaustively on a small list:
        // every snapshot >= watermark reads the same version from the
        // pruned list as from the full list.
        let versions = [1, 3, 6, 9];
        for wm in 0..12 {
            let keep = retain_from(&versions, wm);
            for snap in wm..12 {
                let full = versions.iter().rev().find(|&&ts| ts <= snap);
                let pruned = versions[keep..].iter().rev().find(|&&ts| ts <= snap);
                assert_eq!(full, pruned, "wm={wm} snap={snap}");
            }
        }
    }

    #[test]
    fn a_version_is_needed_by_the_snapshots_it_resolves() {
        // Version at ts 3, successor at ts 6: snapshots 3..=5 resolve here.
        assert!(version_needed(3, 6, [5]));
        assert!(version_needed(3, 6, [3]));
        assert!(!version_needed(3, 6, [6]));
        assert!(!version_needed(3, 6, [2]));
        assert!(!version_needed(3, 6, []));
        assert!(version_needed(3, 6, [1, 9, 4]));
    }

    #[test]
    fn pinning_engages_at_half_budget() {
        assert!(!should_pin(0, Some(8)));
        assert!(!should_pin(3, Some(8)));
        assert!(should_pin(4, Some(8)));
        assert!(should_pin(7, Some(8)));
        assert!(should_pin(1, Some(1)));
        assert!(!should_pin(1000, None));
    }

    #[test]
    fn pipeline_admission_follows_depth_and_buffer() {
        // Depth 1: the unpipelined protocol never speculates.
        assert!(!pipeline_admissible(1, true, 0, 8));
        // Depth 2: up to one extra batch of speculative work.
        assert!(pipeline_admissible(2, true, 0, 8));
        assert!(pipeline_admissible(2, true, 7, 8));
        assert!(!pipeline_admissible(2, true, 8, 8));
        // No in-flight batch: nothing to overlap with.
        assert!(!pipeline_admissible(2, false, 0, 8));
        // Deeper pipelines scale the buffer linearly.
        assert!(pipeline_admissible(3, true, 15, 8));
        assert!(!pipeline_admissible(3, true, 16, 8));
    }

    #[test]
    fn speculative_preval_is_footprint_intersection() {
        // A read under the just-published write is doomed: squash.
        assert!(speculative_preval(&[1, 2], &[9], [2]));
        // So is a blind overwrite — the server counts ws in the footprint.
        assert!(speculative_preval(&[1], &[9], [9]));
        // Disjoint footprints submit.
        assert!(!speculative_preval(&[1, 2], &[9], [3, 4]));
        assert!(!speculative_preval(&[], &[], [1]));
        assert!(!speculative_preval(&[1], &[2], []));
    }

    #[test]
    fn spec_carry_fresh_requires_no_newer_commits() {
        // Every footprint item's newest commit is at or before the
        // snapshot: still fresh, submit.
        assert!(spec_carry_fresh(5, [3, 5, 1]));
        // One item was overwritten after the snapshot: doomed, squash.
        assert!(!spec_carry_fresh(5, [3, 6]));
        // An empty footprint (never-written items read as initial state)
        // is trivially fresh.
        assert!(spec_carry_fresh(0, []));
    }

    #[test]
    fn per_entry_conflict_agrees_with_window_conflict() {
        let entries = vec![(3u64, vec![10, 20]), (4u64, vec![30])];
        for fp in [vec![10], vec![30], vec![20, 99], vec![99], vec![]] {
            let window = footprint_conflicts(fp.iter().copied(), &entries);
            let per_entry = entries
                .iter()
                .any(|(_, items)| footprint_hits_entry(fp.iter().copied(), items));
            assert_eq!(window, per_entry, "footprint {fp:?}");
        }
    }

    #[test]
    fn preval_later_lanes_lose() {
        // Lane 0 broadcasts {7}; lanes 1 and 2 committing, lane 2 reads 7.
        let committing = 0b111;
        let losers = preval_losers(0, &[7], committing, |j, item| j == 2 && item == 7);
        assert_eq!(losers, 0b100);
        // Earlier lanes never lose to a later broadcaster.
        let losers = preval_losers(2, &[7], committing, |_, _| true);
        assert_eq!(losers, 0);
    }
}
