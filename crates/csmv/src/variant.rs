//! The ablation variants of §IV-C.

/// Which of CSMV's mechanisms are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsmvVariant {
    /// The full system: client-server + pre-validation + client-side
    /// write-back + batched ATR insert + collaborative validation.
    Full,
    /// Collaborative validation disabled: server worker lanes validate
    /// distinct transactions independently (divergent, uncoalesced).
    NoCv,
    /// Only the client-server skeleton: no pre-validation, no client-side
    /// write-back (the server writes back and bumps the GTS, serially per
    /// transaction), no batched insert (one reservation per transaction),
    /// no collaborative validation.
    OnlyCs,
}

impl CsmvVariant {
    /// Intra-warp pre-validation on the client.
    pub fn pre_validation(self) -> bool {
        !matches!(self, CsmvVariant::OnlyCs)
    }

    /// Warp-cooperative validation of one transaction at a time.
    pub fn collaborative_validation(self) -> bool {
        matches!(self, CsmvVariant::Full)
    }

    /// Write-back executed by the client after a commit response.
    pub fn client_write_back(self) -> bool {
        !matches!(self, CsmvVariant::OnlyCs)
    }

    /// One ATR reservation per warp batch instead of per transaction.
    pub fn batched_insert(self) -> bool {
        !matches!(self, CsmvVariant::OnlyCs)
    }

    /// Display name used by the benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            CsmvVariant::Full => "CSMV",
            CsmvVariant::NoCv => "CSMV-NoCV",
            CsmvVariant::OnlyCs => "CSMV-onlyCS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything() {
        let v = CsmvVariant::Full;
        assert!(v.pre_validation());
        assert!(v.collaborative_validation());
        assert!(v.client_write_back());
        assert!(v.batched_insert());
    }

    #[test]
    fn nocv_only_disables_collaboration() {
        let v = CsmvVariant::NoCv;
        assert!(v.pre_validation());
        assert!(!v.collaborative_validation());
        assert!(v.client_write_back());
        assert!(v.batched_insert());
    }

    #[test]
    fn onlycs_disables_all_complements() {
        let v = CsmvVariant::OnlyCs;
        assert!(!v.pre_validation());
        assert!(!v.collaborative_validation());
        assert!(!v.client_write_back());
        assert!(!v.batched_insert());
    }
}
