//! The commit-request wire protocol between client warps and the server.
//!
//! Each client warp owns one mailbox slot (see `gpu_sim::channel`). The
//! request payload is laid out so that
//!
//! * the per-lane **headers** are lane-contiguous (the server's two header
//!   reads are fully coalesced), and
//! * each lane's **read-set and write-set are contiguous** (lane-major), so
//!   the server's collaborative validation can broadcast-read one entry at a
//!   time with a single 128-byte segment per access.
//!
//! Because the read/write-sets are built *in place* during transaction
//! execution (the payload region doubles as the `SetArea` of the execution
//! engine), commit submission only has to write the headers and flip the
//! status flag — the client-side cost the paper's design counts on.
//!
//! ```text
//! request:  [hdr_a × 32][hdr_b × 32][lane 0 rs × max_rs][lane 1 rs]…
//!                                    [lane 0 ws × max_ws][lane 1 ws]…[seq]
//!   hdr_a = committing << 32 | snapshot
//!   hdr_b = rs_len    << 32 | ws_len
//! response: [outcome × 32][seq echo]
//!   outcome = 0 (not committing)
//!           | 1 + reason (abort; reason = stm_core::AbortReason id)
//!           | OUTCOME_COMMIT_BASE + cts (commit)
//! ```
//!
//! The trailing `seq` word is the per-slot batch sequence number used for
//! idempotent duplicate suppression under fault injection: a timed-out
//! client re-posts the *same* seq, the server processes each seq at most
//! once and echoes it as the last response write before flipping the status
//! to `RESPONSE` (see `gpu_sim::channel` for the full state machine).

use gpu_sim::channel::Mailboxes;
use gpu_sim::mem::GlobalMemory;
use gpu_sim::WARP_LANES;
use stm_core::{AbortReason, SetArea};

/// Response word: lane was not part of the batch.
pub const OUTCOME_NONE: u64 = 0;
/// Response word bias for aborts: `word = OUTCOME_ABORT_BASE + reason id`,
/// so the client learns *why* the server refused the transaction.
pub const OUTCOME_ABORT_BASE: u64 = 1;
/// Response word bias for commits: `word = OUTCOME_COMMIT_BASE + cts`.
/// Everything in `(OUTCOME_NONE, OUTCOME_COMMIT_BASE)` is an abort code.
pub const OUTCOME_COMMIT_BASE: u64 = 16;

/// A decoded response word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Lane was not part of the batch.
    None,
    /// Validation refused the transaction for the given reason.
    Abort(AbortReason),
    /// Transaction committed with this timestamp.
    Commit(u64),
}

/// Encode an abort response carrying its reason.
pub fn pack_abort(reason: AbortReason) -> u64 {
    OUTCOME_ABORT_BASE + reason.id() as u64
}

/// Encode a commit response carrying its timestamp.
pub fn pack_commit(cts: u64) -> u64 {
    OUTCOME_COMMIT_BASE + cts
}

/// Decode a response word.
pub fn unpack_outcome(word: u64) -> Outcome {
    if word == OUTCOME_NONE {
        Outcome::None
    } else if word >= OUTCOME_COMMIT_BASE {
        Outcome::Commit(word - OUTCOME_COMMIT_BASE)
    } else {
        let reason = AbortReason::from_id((word - OUTCOME_ABORT_BASE) as u8)
            .expect("abort outcome with unknown reason code");
        Outcome::Abort(reason)
    }
}

/// Payload geometry for one launch.
#[derive(Debug, Clone)]
pub struct CommitProtocol {
    mailboxes: Mailboxes,
    max_rs: usize,
    max_ws: usize,
}

impl CommitProtocol {
    /// Allocate the mailboxes for `num_client_warps` clients.
    pub fn alloc(
        global: &mut GlobalMemory,
        num_client_warps: usize,
        max_rs: usize,
        max_ws: usize,
    ) -> Self {
        // One extra word at the end of each payload for the batch seq /
        // seq echo (see module docs).
        let req_words = 2 * WARP_LANES + WARP_LANES * (max_rs + max_ws) + 1;
        let resp_words = WARP_LANES + 1;
        let mailboxes = Mailboxes::alloc(global, num_client_warps, req_words, resp_words);
        Self {
            mailboxes,
            max_rs,
            max_ws,
        }
    }

    /// The underlying mailboxes (status/flag addressing).
    pub fn mailboxes(&self) -> &Mailboxes {
        &self.mailboxes
    }

    /// Read-set capacity per lane.
    pub fn max_rs(&self) -> usize {
        self.max_rs
    }

    /// Write-set capacity per lane.
    pub fn max_ws(&self) -> usize {
        self.max_ws
    }

    /// Address of lane `lane`'s header-A word in `slot`'s request.
    pub fn hdr_a_addr(&self, slot: usize, lane: usize) -> u64 {
        self.mailboxes.req_addr(slot, lane)
    }

    /// Address of lane `lane`'s header-B word in `slot`'s request.
    pub fn hdr_b_addr(&self, slot: usize, lane: usize) -> u64 {
        self.mailboxes.req_addr(slot, WARP_LANES + lane)
    }

    /// Address of read-set entry `idx` of `lane` in `slot`'s request.
    pub fn rs_addr(&self, slot: usize, lane: usize, idx: usize) -> u64 {
        debug_assert!(idx < self.max_rs);
        self.mailboxes
            .req_addr(slot, 2 * WARP_LANES + lane * self.max_rs + idx)
    }

    /// Address of write-set entry `idx` of `lane` in `slot`'s request.
    pub fn ws_addr(&self, slot: usize, lane: usize, idx: usize) -> u64 {
        debug_assert!(idx < self.max_ws);
        self.mailboxes.req_addr(
            slot,
            2 * WARP_LANES + WARP_LANES * self.max_rs + lane * self.max_ws + idx,
        )
    }

    /// Address of lane `lane`'s outcome word in `slot`'s response.
    pub fn outcome_addr(&self, slot: usize, lane: usize) -> u64 {
        self.mailboxes.resp_addr(slot, lane)
    }

    /// Address of `slot`'s request batch-sequence word.
    pub fn req_seq_addr(&self, slot: usize) -> u64 {
        self.mailboxes.req_seq_addr(slot)
    }

    /// Address of `slot`'s response seq-echo word.
    pub fn resp_seq_addr(&self, slot: usize) -> u64 {
        self.mailboxes.resp_seq_addr(slot)
    }

    /// Pack header A.
    pub fn pack_hdr_a(committing: bool, snapshot: u64) -> u64 {
        debug_assert!(snapshot <= u32::MAX as u64);
        ((committing as u64) << 32) | snapshot
    }

    /// Unpack header A into `(committing, snapshot)`.
    pub fn unpack_hdr_a(word: u64) -> (bool, u64) {
        (word >> 32 != 0, word & 0xFFFF_FFFF)
    }

    /// Pack header B.
    pub fn pack_hdr_b(rs_len: usize, ws_len: usize) -> u64 {
        ((rs_len as u64) << 32) | ws_len as u64
    }

    /// Unpack header B into `(rs_len, ws_len)`.
    pub fn unpack_hdr_b(word: u64) -> (usize, usize) {
        ((word >> 32) as usize, (word & 0xFFFF_FFFF) as usize)
    }

    /// A [`SetArea`] view of one client warp's request payload, letting the
    /// execution engine build the commit request in place.
    pub fn set_area(&self, slot: usize) -> RequestSetArea {
        RequestSetArea {
            proto: self.clone(),
            slot,
        }
    }
}

/// [`SetArea`] implementation backed by a mailbox request payload.
#[derive(Debug, Clone)]
pub struct RequestSetArea {
    proto: CommitProtocol,
    slot: usize,
}

impl SetArea for RequestSetArea {
    fn rs_addr(&self, lane: usize, idx: usize) -> u64 {
        self.proto.rs_addr(self.slot, lane, idx)
    }
    fn ws_addr(&self, lane: usize, idx: usize) -> u64 {
        self.proto.ws_addr(self.slot, lane, idx)
    }
    fn max_rs(&self) -> usize {
        self.proto.max_rs
    }
    fn max_ws(&self) -> usize {
        self.proto.max_ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_are_lane_contiguous() {
        let mut g = GlobalMemory::new();
        let p = CommitProtocol::alloc(&mut g, 4, 8, 4);
        for lane in 1..WARP_LANES {
            assert_eq!(p.hdr_a_addr(2, lane), p.hdr_a_addr(2, lane - 1) + 1);
            assert_eq!(p.hdr_b_addr(2, lane), p.hdr_b_addr(2, lane - 1) + 1);
        }
    }

    #[test]
    fn lane_sets_are_contiguous() {
        let mut g = GlobalMemory::new();
        let p = CommitProtocol::alloc(&mut g, 4, 8, 4);
        for idx in 1..8 {
            assert_eq!(p.rs_addr(0, 3, idx), p.rs_addr(0, 3, idx - 1) + 1);
        }
        for idx in 1..4 {
            assert_eq!(p.ws_addr(0, 3, idx), p.ws_addr(0, 3, idx - 1) + 1);
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut g = GlobalMemory::new();
        let p = CommitProtocol::alloc(&mut g, 2, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for slot in 0..2 {
            for lane in 0..WARP_LANES {
                assert!(seen.insert(p.hdr_a_addr(slot, lane)));
                assert!(seen.insert(p.hdr_b_addr(slot, lane)));
                assert!(seen.insert(p.outcome_addr(slot, lane)));
                for idx in 0..4 {
                    assert!(seen.insert(p.rs_addr(slot, lane, idx)));
                }
                for idx in 0..2 {
                    assert!(seen.insert(p.ws_addr(slot, lane, idx)));
                }
            }
            assert!(seen.insert(p.req_seq_addr(slot)));
            assert!(seen.insert(p.resp_seq_addr(slot)));
        }
    }

    #[test]
    fn header_packing_roundtrips() {
        let a = CommitProtocol::pack_hdr_a(true, 12345);
        assert_eq!(CommitProtocol::unpack_hdr_a(a), (true, 12345));
        let a = CommitProtocol::pack_hdr_a(false, 0);
        assert_eq!(CommitProtocol::unpack_hdr_a(a), (false, 0));
        let b = CommitProtocol::pack_hdr_b(17, 3);
        assert_eq!(CommitProtocol::unpack_hdr_b(b), (17, 3));
    }

    #[test]
    fn outcome_codec_roundtrips() {
        assert_eq!(unpack_outcome(OUTCOME_NONE), Outcome::None);
        for reason in AbortReason::ALL {
            let word = pack_abort(reason);
            assert!(word > OUTCOME_NONE && word < OUTCOME_COMMIT_BASE);
            assert_eq!(unpack_outcome(word), Outcome::Abort(reason));
        }
        for cts in [0, 1, 12345] {
            assert_eq!(unpack_outcome(pack_commit(cts)), Outcome::Commit(cts));
        }
    }

    #[test]
    fn abort_codes_fit_below_commit_base() {
        // Every abort reason must encode strictly below the commit bias, or
        // an abort would be misread as a commit with a small cts.
        let top = OUTCOME_ABORT_BASE + AbortReason::ALL.len() as u64 - 1;
        assert!(top < OUTCOME_COMMIT_BASE);
    }

    #[test]
    fn set_area_matches_protocol_addresses() {
        let mut g = GlobalMemory::new();
        let p = CommitProtocol::alloc(&mut g, 3, 8, 4);
        let area = p.set_area(1);
        assert_eq!(area.rs_addr(5, 2), p.rs_addr(1, 5, 2));
        assert_eq!(area.ws_addr(5, 2), p.ws_addr(1, 5, 2));
        assert_eq!(area.max_rs(), 8);
        assert_eq!(area.max_ws(), 4);
    }
}
