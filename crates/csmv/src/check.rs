//! CSMV-specific protocol-invariant checker for the simulator's analysis
//! layer.
//!
//! [`CsmvInvariantChecker`] watches the raw memory-event stream of a
//! **single-server** CSMV run and re-derives the commit protocol's
//! obligations from §III-B of the paper:
//!
//! 1. **Reservation order** — commit timestamps are handed out by CAS on
//!    the shared `next_cts` counter; every successful CAS must extend the
//!    counter gap-free (the batch `[expected, new)` follows directly after
//!    the previous one).
//! 2. **ATR publication** — a cts tag written into an ATR slot must land
//!    in the slot the ring mapping assigns it (`slot_of(cts)`), must have
//!    been reserved first, must be strictly increasing per slot (ring
//!    recycling only moves forward), and is published at most once.
//! 3. **GTS turn-taking** — the GTS is bumped once per reserved batch, in
//!    reservation order, to that batch's last cts. A client that skips the
//!    turn-taking wait publishes out of order and trips this check.
//! 4. **No write-back before validation** — a version word installed in a
//!    VBox must carry a cts that the server already published to the ATR;
//!    writing back with an unreserved/unpublished timestamp means the
//!    write skipped validation.
//! 5. **End-of-run density** — the published cts set is exactly
//!    `1..=count` (the turn-taking protocol relies on it).
//!
//! The multi-server variant publishes the GTS progressively (a run of
//! consecutive ctss at a time) and reserves from a *global* counter, which
//! breaks assumptions 1 and 3 — `run_multi` therefore only enables the
//! race detector, not this checker.

use std::collections::{HashMap, HashSet};

use gpu_sim::{AccessKind, InvariantChecker, MemEvent, Space, Violation};
use stm_core::vbox::unpack_version;
use stm_core::VBoxHeap;

use crate::SharedAtr;

/// One reserved commit-timestamp batch: the half-open range `[base, last]`
/// handed out by a successful CAS on `next_cts`.
#[derive(Debug, Clone, Copy)]
struct Batch {
    base: u64,
    last: u64,
}

/// Protocol-invariant checker for single-server CSMV (all variants).
pub struct CsmvInvariantChecker {
    atr: SharedAtr,
    heap: VBoxHeap,
    gts_addr: u64,
    server_sm: usize,
    // Derived ATR geometry (`SharedAtr` keeps its base private; slot 0's
    // cts-tag address plus the per-slot stride recover the full map).
    cts0: u64,
    stride: u64,
    // Derived VBox geometry.
    h0: u64,
    words_per_box: u64,
    // Reservation state: `next` mirrors the shared counter (host-initialised
    // to 1), `batches` the reserved-but-not-yet-GTS-published queue.
    next: u64,
    batches: Vec<Batch>,
    // Publication state.
    published: HashSet<u64>,
    last_tag: HashMap<u64, u64>,
    // GTS state: current value and index of the next batch due to publish.
    gts: u64,
    gts_batch: usize,
}

impl CsmvInvariantChecker {
    /// Build a checker for one CSMV launch. `server_sm` scopes the shared
    /// ATR addresses; `gts_addr` is the global GTS word (assumed to start
    /// at 0, as `run` initialises it).
    pub fn new(atr: SharedAtr, heap: VBoxHeap, gts_addr: u64, server_sm: usize) -> Self {
        let cts0 = atr.slot_cts_addr(0);
        let stride = 2 + atr.max_ws() as u64;
        let h0 = heap.head_addr(0);
        let words_per_box = 1 + heap.versions_per_box();
        Self {
            atr,
            heap,
            gts_addr,
            server_sm,
            cts0,
            stride,
            h0,
            words_per_box,
            next: 1,
            batches: Vec::new(),
            published: HashSet::new(),
            last_tag: HashMap::new(),
            gts: 0,
            gts_batch: 0,
        }
    }

    fn violation(ev: &MemEvent, message: String) -> Violation {
        Violation {
            checker: "csmv",
            warp: ev.warp,
            clock: ev.clock,
            addr: ev.addr,
            message,
        }
    }

    /// Successful CAS on the shared `next_cts` counter: a batch reservation.
    fn on_reserve(&mut self, ev: &MemEvent, expected: u64, new: u64, out: &mut Vec<Violation>) {
        if expected != self.next {
            out.push(Self::violation(
                ev,
                format!(
                    "cts reservation CAS succeeded from {expected} but the counter \
                     should be {} — reservations must be gap-free",
                    self.next
                ),
            ));
        }
        if new <= expected {
            out.push(Self::violation(
                ev,
                format!("cts reservation moved the counter backwards ({expected} -> {new})"),
            ));
            return;
        }
        self.batches.push(Batch {
            base: expected,
            last: new - 1,
        });
        self.next = new;
    }

    /// A cts tag written into an ATR slot (publication of one entry).
    fn on_tag_write(&mut self, ev: &MemEvent, slot: u64, cts: u64, out: &mut Vec<Violation>) {
        if cts == 0 {
            out.push(Self::violation(
                ev,
                "published cts 0 (timestamps are 1-based)".into(),
            ));
            return;
        }
        if cts >= self.next {
            out.push(Self::violation(
                ev,
                format!(
                    "published cts {cts} before it was reserved (next_cts is {})",
                    self.next
                ),
            ));
        }
        if self.atr.slot_of(cts) != slot {
            out.push(Self::violation(
                ev,
                format!(
                    "cts {cts} published into ATR slot {slot}, but the ring maps it to slot {}",
                    self.atr.slot_of(cts)
                ),
            ));
        }
        if let Some(&prev) = self.last_tag.get(&slot) {
            if cts <= prev {
                out.push(Self::violation(
                    ev,
                    format!(
                        "ATR slot {slot} tag went from {prev} to {cts} — per-slot tags must \
                         strictly increase (ring recycling only moves forward)"
                    ),
                ));
            }
        }
        self.last_tag.insert(slot, cts);
        if !self.published.insert(cts) {
            out.push(Self::violation(ev, format!("cts {cts} published twice")));
        }
    }

    /// A write to the global GTS word (batch publication).
    fn on_gts_write(&mut self, ev: &MemEvent, value: u64, out: &mut Vec<Violation>) {
        if value <= self.gts {
            out.push(Self::violation(
                ev,
                format!(
                    "GTS moved from {} to {value} — it must strictly increase",
                    self.gts
                ),
            ));
        }
        match self.batches.get(self.gts_batch) {
            None => out.push(Self::violation(
                ev,
                format!("GTS bumped to {value} with no reserved batch outstanding"),
            )),
            Some(b) => {
                if value != b.last {
                    out.push(Self::violation(
                        ev,
                        format!(
                            "GTS bumped to {value}, but the next batch in reservation order \
                             is [{}, {}] and must publish {} — a batch published out of turn",
                            b.base, b.last, b.last
                        ),
                    ));
                } else if self.gts != b.base - 1 {
                    out.push(Self::violation(
                        ev,
                        format!(
                            "batch [{}, {}] published while GTS was {} (expected {}) — \
                             the turn-taking wait was skipped",
                            b.base,
                            b.last,
                            self.gts,
                            b.base - 1
                        ),
                    ));
                }
            }
        }
        self.gts = value;
        self.gts_batch += 1;
    }

    /// A write into the VBox heap region (write-back).
    fn on_heap_write(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        let off = ev.addr - self.h0;
        let item = off / self.words_per_box;
        if off.is_multiple_of(self.words_per_box) {
            if ev.value >= self.heap.versions_per_box() {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} head set to {} but only {} version slots exist",
                        ev.value,
                        self.heap.versions_per_box()
                    ),
                ));
            }
        } else {
            let (ts, _) = unpack_version(ev.value);
            if !self.published.contains(&ts) {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} version installed with cts {ts}, which the server \
                         never published — write-back before validation"
                    ),
                ));
            }
        }
    }
}

impl InvariantChecker for CsmvInvariantChecker {
    fn name(&self) -> &'static str {
        "csmv"
    }

    fn on_event(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        match ev.space {
            Space::Shared => {
                if ev.sm != self.server_sm {
                    return;
                }
                if ev.addr == self.atr.next_cts_addr() {
                    if let AccessKind::Cas {
                        expected,
                        new,
                        success: true,
                    } = ev.kind
                    {
                        self.on_reserve(ev, expected, new, out);
                    }
                    return;
                }
                // A plain store to a cts-tag word publishes an ATR entry.
                if ev.kind == AccessKind::Write && ev.addr >= self.cts0 {
                    let off = ev.addr - self.cts0;
                    let slot = off / self.stride;
                    if off.is_multiple_of(self.stride) && slot < self.atr.capacity() {
                        self.on_tag_write(ev, slot, ev.value, out);
                    }
                }
            }
            Space::Global => {
                if ev.addr == self.gts_addr {
                    if ev.kind == AccessKind::Write {
                        self.on_gts_write(ev, ev.value, out);
                    }
                    return;
                }
                let heap_end = self.h0 + self.heap.num_items() * self.words_per_box;
                if ev.kind == AccessKind::Write && ev.addr >= self.h0 && ev.addr < heap_end {
                    self.on_heap_write(ev, out);
                }
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Violation>) {
        let reserved = self.next - 1;
        for cts in 1..=reserved {
            if !self.published.contains(&cts) {
                out.push(Violation {
                    checker: "csmv",
                    warp: usize::MAX,
                    clock: u64::MAX,
                    addr: u64::MAX,
                    message: format!(
                        "cts {cts} was reserved but never published to the ATR — \
                         the published set must be dense 1..={reserved}"
                    ),
                });
            }
        }
        if self.published.len() as u64 != reserved {
            out.push(Violation {
                checker: "csmv",
                warp: usize::MAX,
                clock: u64::MAX,
                addr: u64::MAX,
                message: format!(
                    "{} distinct ctss published but only {reserved} were reserved",
                    self.published.len()
                ),
            });
        }
        if self.gts_batch != self.batches.len() {
            out.push(Violation {
                checker: "csmv",
                warp: usize::MAX,
                clock: u64::MAX,
                addr: u64::MAX,
                message: format!(
                    "{} batches reserved but the GTS was only bumped {} times",
                    self.batches.len(),
                    self.gts_batch
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        run, CommitProtocol, CsmvClient, CsmvConfig, CsmvVariant, ReceiverWarp, ServerControl,
        WorkerWarp,
    };
    use gpu_sim::{AnalysisConfig, Device, GpuConfig};
    use workloads::{BankConfig, BankSource};

    fn analysed_cfg(variant: CsmvVariant) -> CsmvConfig {
        let gpu = GpuConfig {
            num_sms: 5,
            ..Default::default()
        };
        CsmvConfig {
            gpu,
            variant,
            server_workers: 3,
            analysis: AnalysisConfig {
                races: true,
                invariants: true,
            },
            ..Default::default()
        }
    }

    /// Every stock variant must come out of a contended run with zero races
    /// and zero protocol violations — the analysis layer's "no false
    /// positives" baseline.
    #[test]
    fn stock_variants_run_clean_under_full_analysis() {
        for (variant, seed) in [
            (CsmvVariant::Full, 42),
            (CsmvVariant::NoCv, 43),
            (CsmvVariant::OnlyCs, 44),
        ] {
            let cfg = analysed_cfg(variant);
            let bank = BankConfig::small(64, 30);
            let res = run(
                &cfg,
                |t| BankSource::new(&bank, seed, t, 3),
                bank.accounts,
                |_| bank.initial_balance,
            );
            let report = res.analysis.expect("analysis was enabled");
            assert!(report.events > 0, "analysis must have observed the run");
            assert!(
                report.is_clean(),
                "variant {variant:?}: races {:?}, violations {:?}",
                report.races,
                report.violations
            );
        }
    }

    /// ATR ring recycling (tiny window, forced wrap-around) exercises the
    /// seqlock-style tag re-check paths; they must stay clean too.
    #[test]
    fn atr_window_overflow_runs_clean_under_full_analysis() {
        let mut cfg = analysed_cfg(CsmvVariant::Full);
        cfg.atr_capacity = 4;
        cfg.versions_per_box = 16;
        let bank = BankConfig::small(16, 0);
        let res = run(
            &cfg,
            |t| BankSource::new(&bank, 9, t, 2),
            bank.accounts,
            |_| bank.initial_balance,
        );
        let report = res.analysis.expect("analysis was enabled");
        assert!(
            report.is_clean(),
            "races {:?}, violations {:?}",
            report.races,
            report.violations
        );
    }

    /// Seeded protocol bug: one warp skips the GTS turn-taking wait and
    /// publishes its batch out of order. The checker must flag the first
    /// out-of-turn bump. The run is stepped manually so we can stop at the
    /// first violation — past that point the protocol is genuinely broken
    /// (healthy warps assert that the GTS never overtakes their batch).
    #[test]
    fn seeded_skip_gts_wait_is_detected() {
        let cfg = analysed_cfg(CsmvVariant::Full);
        let bank = BankConfig::small(64, 0); // all-update workload
        let server_sm = cfg.gpu.num_sms - 1;
        let num_clients = cfg.num_client_warps();

        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = stm_core::VBoxHeap::init(
            dev.global_mut(),
            bank.accounts,
            cfg.versions_per_box,
            |_| bank.initial_balance,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc(&mut dev, server_sm, num_clients);
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);
        dev.enable_analysis(cfg.analysis);
        dev.add_invariant_checker(Box::new(CsmvInvariantChecker::new(
            atr.clone(),
            heap.clone(),
            gts_addr,
            server_sm,
        )));

        let mut thread_id = 0;
        let mut slot = 0;
        for sm in 0..server_sm {
            for _ in 0..cfg.warps_per_sm {
                let sources: Vec<BankSource> = (0..32)
                    .map(|i| BankSource::new(&bank, 7, thread_id + i, 4))
                    .collect();
                let mut client = CsmvClient::new(
                    sources,
                    thread_id,
                    Default::default(),
                    heap.clone(),
                    proto.clone(),
                    slot,
                    gts_addr,
                    done_addr,
                    cfg.variant,
                );
                if slot == num_clients - 1 {
                    client.inject_skip_gts_wait();
                }
                dev.spawn(sm, Box::new(client));
                thread_id += 32;
                slot += 1;
            }
        }
        dev.spawn(
            server_sm,
            Box::new(ReceiverWarp::new(
                proto.clone(),
                ctl.clone(),
                num_clients,
                done_addr,
            )),
        );
        for _ in 0..cfg.server_workers {
            dev.spawn(
                server_sm,
                Box::new(WorkerWarp::new(
                    proto.clone(),
                    ctl.clone(),
                    atr.clone(),
                    heap.clone(),
                    gts_addr,
                    cfg.variant,
                )),
            );
        }

        for _ in 0..50_000_000u64 {
            if dev.analysis().is_some_and(|a| a.violation_count() > 0) {
                let v = &dev.analysis().unwrap().violations()[0];
                assert_eq!(v.checker, "csmv");
                assert!(
                    v.message.contains("out of turn") || v.message.contains("turn-taking"),
                    "unexpected violation: {v}"
                );
                return;
            }
            if dev.live_warps() == 0 {
                panic!("run completed without the seeded bug being detected");
            }
            dev.step_once();
        }
        panic!("run neither finished nor produced a violation");
    }

    /// A single client warp that skips the wait is always "next in line", so
    /// the skip is unobservable and must NOT be flagged — the checker keys on
    /// protocol order, not on which code path produced the bump.
    #[test]
    fn single_client_skip_is_benign() {
        let gpu = GpuConfig {
            num_sms: 2,
            ..Default::default()
        }; // 1 client SM + server
        let cfg = CsmvConfig {
            gpu,
            server_workers: 2,
            warps_per_sm: 1,
            analysis: AnalysisConfig {
                races: true,
                invariants: true,
            },
            ..Default::default()
        };
        let bank = BankConfig::small(16, 0);
        let server_sm = cfg.gpu.num_sms - 1;
        let num_clients = cfg.num_client_warps();

        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = stm_core::VBoxHeap::init(
            dev.global_mut(),
            bank.accounts,
            cfg.versions_per_box,
            |_| bank.initial_balance,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc(&mut dev, server_sm, num_clients);
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);
        dev.enable_analysis(cfg.analysis);
        dev.add_invariant_checker(Box::new(CsmvInvariantChecker::new(
            atr.clone(),
            heap.clone(),
            gts_addr,
            server_sm,
        )));

        let sources: Vec<BankSource> = (0..32).map(|i| BankSource::new(&bank, 3, i, 3)).collect();
        let mut client = CsmvClient::new(
            sources,
            0,
            Default::default(),
            heap.clone(),
            proto.clone(),
            0,
            gts_addr,
            done_addr,
            cfg.variant,
        );
        client.inject_skip_gts_wait();
        dev.spawn(0, Box::new(client));
        dev.spawn(
            server_sm,
            Box::new(ReceiverWarp::new(
                proto.clone(),
                ctl.clone(),
                num_clients,
                done_addr,
            )),
        );
        for _ in 0..cfg.server_workers {
            dev.spawn(
                server_sm,
                Box::new(WorkerWarp::new(
                    proto.clone(),
                    ctl.clone(),
                    atr.clone(),
                    heap.clone(),
                    gts_addr,
                    cfg.variant,
                )),
            );
        }
        dev.run_to_completion();
        let report = dev.finish_analysis().expect("analysis enabled");
        assert_eq!(
            report.violations.len(),
            0,
            "violations: {:?}",
            report.violations
        );
    }
}
