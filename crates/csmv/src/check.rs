//! CSMV-specific protocol-invariant checker for the simulator's analysis
//! layer.
//!
//! [`CsmvInvariantChecker`] watches the raw memory-event stream of a
//! **single-server** CSMV run and re-derives the commit protocol's
//! obligations from §III-B of the paper:
//!
//! 1. **Reservation order** — commit timestamps are handed out by CAS on
//!    the shared `next_cts` counter; every successful CAS must extend the
//!    counter gap-free (the batch `[expected, new)` follows directly after
//!    the previous one).
//! 2. **ATR publication** — a cts tag written into an ATR slot must land
//!    in the slot the ring mapping assigns it (`slot_of(cts)`), must have
//!    been reserved first, must be strictly increasing per slot (ring
//!    recycling only moves forward), and is published at most once.
//! 3. **GTS turn-taking** — the GTS is bumped once per reserved batch, in
//!    reservation order, to that batch's last cts. A client that skips the
//!    turn-taking wait publishes out of order and trips this check.
//! 4. **No write-back before validation** — a version word installed in a
//!    VBox must carry a cts that the server already published to the ATR;
//!    writing back with an unreserved/unpublished timestamp means the
//!    write skipped validation.
//! 5. **End-of-run density** — the published cts set is exactly
//!    `1..=count` (the turn-taking protocol relies on it).
//!
//! The multi-server variant publishes the GTS progressively (a run of
//! consecutive ctss at a time) and reserves from a *global* counter, which
//! relaxes assumptions 1 and 3. [`MultiCsmvInvariantChecker`] re-derives
//! the weakened obligations that remain:
//!
//! 1'. **Reservation order (relaxed)** — timestamps come from one global
//!     `fetch-add` per batch, so gap-freedom is structural; what must
//!     still hold is that every reservation takes at least one timestamp,
//!     the observed counter value mirrors the reservation history, and —
//!     the multi design's load-bearing invariant — each partition's
//!     *local* publication order agrees with *global* cts order (the
//!     validator's backward walk stops early on that assumption).
//! 2'. **ATR publication** — per-slot *seq tags* strictly increase and
//!     land in the slot the local ring maps them to; a published entry's
//!     cts was reserved first and is published exactly once device-wide;
//!     the local seq line is gap-free.
//! 3'. **GTS publication (relaxed)** — there is no batch turn-taking:
//!     clients publish progressively, so the GTS may advance by arbitrary
//!     runs (and two clients that observed the same run may legally write
//!     the same value back-to-back). What must hold is that it never
//!     *regresses* and never overtakes the reservation counter. Under
//!     partition crashes a quarantine CAS may additionally skip a dead
//!     partition's hole one cts at a time; a checker built with
//!     `expect_complete = false` skips the end-of-run completeness checks
//!     that crashes legitimately break.
//! 4'. **No write-back before publication** — unchanged: an installed
//!     version's cts must already be published in some partition's ATR.

use std::collections::{HashMap, HashSet};

use gpu_sim::{AccessKind, InvariantChecker, MemEvent, Space, Violation};
use stm_core::vbox::unpack_version;
use stm_core::VBoxHeap;

use crate::multi::PartitionedAtr;
use crate::SharedAtr;

/// One reserved commit-timestamp batch: the half-open range `[base, last]`
/// handed out by a successful CAS on `next_cts`.
#[derive(Debug, Clone, Copy)]
struct Batch {
    base: u64,
    last: u64,
}

/// Protocol-invariant checker for single-server CSMV (all variants).
pub struct CsmvInvariantChecker {
    atr: SharedAtr,
    heap: VBoxHeap,
    gts_addr: u64,
    server_sm: usize,
    // Derived ATR geometry (`SharedAtr` keeps its base private; slot 0's
    // cts-tag address plus the per-slot stride recover the full map).
    cts0: u64,
    stride: u64,
    // Derived VBox geometry.
    h0: u64,
    words_per_box: u64,
    // Reservation state: `next` mirrors the shared counter (host-initialised
    // to 1), `batches` the reserved-but-not-yet-GTS-published queue.
    next: u64,
    batches: Vec<Batch>,
    // Publication state.
    published: HashSet<u64>,
    last_tag: HashMap<u64, u64>,
    // GTS state: current value and index of the next batch due to publish.
    gts: u64,
    gts_batch: usize,
}

impl CsmvInvariantChecker {
    /// Build a checker for one CSMV launch. `server_sm` scopes the shared
    /// ATR addresses; `gts_addr` is the global GTS word (assumed to start
    /// at 0, as `run` initialises it).
    pub fn new(atr: SharedAtr, heap: VBoxHeap, gts_addr: u64, server_sm: usize) -> Self {
        let cts0 = atr.slot_cts_addr(0);
        let stride = 2 + atr.max_ws() as u64;
        let h0 = heap.head_addr(0);
        let words_per_box = 1 + heap.versions_per_box();
        Self {
            atr,
            heap,
            gts_addr,
            server_sm,
            cts0,
            stride,
            h0,
            words_per_box,
            next: 1,
            batches: Vec::new(),
            published: HashSet::new(),
            last_tag: HashMap::new(),
            gts: 0,
            gts_batch: 0,
        }
    }

    fn violation(ev: &MemEvent, message: String) -> Violation {
        Violation {
            checker: "csmv",
            warp: ev.warp,
            clock: ev.clock,
            addr: ev.addr,
            message,
        }
    }

    /// Successful CAS on the shared `next_cts` counter: a batch reservation.
    fn on_reserve(&mut self, ev: &MemEvent, expected: u64, new: u64, out: &mut Vec<Violation>) {
        if expected != self.next {
            out.push(Self::violation(
                ev,
                format!(
                    "cts reservation CAS succeeded from {expected} but the counter \
                     should be {} — reservations must be gap-free",
                    self.next
                ),
            ));
        }
        if new <= expected {
            out.push(Self::violation(
                ev,
                format!("cts reservation moved the counter backwards ({expected} -> {new})"),
            ));
            return;
        }
        self.batches.push(Batch {
            base: expected,
            last: new - 1,
        });
        self.next = new;
    }

    /// A cts tag written into an ATR slot (publication of one entry).
    fn on_tag_write(&mut self, ev: &MemEvent, slot: u64, cts: u64, out: &mut Vec<Violation>) {
        if cts == 0 {
            out.push(Self::violation(
                ev,
                "published cts 0 (timestamps are 1-based)".into(),
            ));
            return;
        }
        if cts >= self.next {
            out.push(Self::violation(
                ev,
                format!(
                    "published cts {cts} before it was reserved (next_cts is {})",
                    self.next
                ),
            ));
        }
        if self.atr.slot_of(cts) != slot {
            out.push(Self::violation(
                ev,
                format!(
                    "cts {cts} published into ATR slot {slot}, but the ring maps it to slot {}",
                    self.atr.slot_of(cts)
                ),
            ));
        }
        if let Some(&prev) = self.last_tag.get(&slot) {
            if cts <= prev {
                out.push(Self::violation(
                    ev,
                    format!(
                        "ATR slot {slot} tag went from {prev} to {cts} — per-slot tags must \
                         strictly increase (ring recycling only moves forward)"
                    ),
                ));
            }
        }
        self.last_tag.insert(slot, cts);
        if !self.published.insert(cts) {
            out.push(Self::violation(ev, format!("cts {cts} published twice")));
        }
    }

    /// A write to the global GTS word (batch publication).
    fn on_gts_write(&mut self, ev: &MemEvent, value: u64, out: &mut Vec<Violation>) {
        if value <= self.gts {
            out.push(Self::violation(
                ev,
                format!(
                    "GTS moved from {} to {value} — it must strictly increase",
                    self.gts
                ),
            ));
        }
        match self.batches.get(self.gts_batch) {
            None => out.push(Self::violation(
                ev,
                format!("GTS bumped to {value} with no reserved batch outstanding"),
            )),
            Some(b) => {
                if value != b.last {
                    out.push(Self::violation(
                        ev,
                        format!(
                            "GTS bumped to {value}, but the next batch in reservation order \
                             is [{}, {}] and must publish {} — a batch published out of turn",
                            b.base, b.last, b.last
                        ),
                    ));
                } else if self.gts != b.base - 1 {
                    out.push(Self::violation(
                        ev,
                        format!(
                            "batch [{}, {}] published while GTS was {} (expected {}) — \
                             the turn-taking wait was skipped",
                            b.base,
                            b.last,
                            self.gts,
                            b.base - 1
                        ),
                    ));
                }
            }
        }
        self.gts = value;
        self.gts_batch += 1;
    }

    /// A write into the VBox heap region (write-back).
    fn on_heap_write(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        let off = ev.addr - self.h0;
        let item = off / self.words_per_box;
        if off.is_multiple_of(self.words_per_box) {
            if ev.value >= self.heap.versions_per_box() {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} head set to {} but only {} version slots exist",
                        ev.value,
                        self.heap.versions_per_box()
                    ),
                ));
            }
        } else {
            let (ts, _) = unpack_version(ev.value);
            if !self.published.contains(&ts) {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} version installed with cts {ts}, which the server \
                         never published — write-back before validation"
                    ),
                ));
            }
        }
    }
}

impl InvariantChecker for CsmvInvariantChecker {
    fn name(&self) -> &'static str {
        "csmv"
    }

    fn on_event(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        match ev.space {
            Space::Shared => {
                if ev.sm != self.server_sm {
                    return;
                }
                if ev.addr == self.atr.next_cts_addr() {
                    if let AccessKind::Cas {
                        expected,
                        new,
                        success: true,
                    } = ev.kind
                    {
                        self.on_reserve(ev, expected, new, out);
                    }
                    return;
                }
                // A plain store to a cts-tag word publishes an ATR entry.
                if ev.kind == AccessKind::Write && ev.addr >= self.cts0 {
                    let off = ev.addr - self.cts0;
                    let slot = off / self.stride;
                    if off.is_multiple_of(self.stride) && slot < self.atr.capacity() {
                        self.on_tag_write(ev, slot, ev.value, out);
                    }
                }
            }
            Space::Global => {
                if ev.addr == self.gts_addr {
                    if ev.kind == AccessKind::Write {
                        self.on_gts_write(ev, ev.value, out);
                    }
                    return;
                }
                let heap_end = self.h0 + self.heap.num_items() * self.words_per_box;
                if ev.kind == AccessKind::Write && ev.addr >= self.h0 && ev.addr < heap_end {
                    self.on_heap_write(ev, out);
                }
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Violation>) {
        let reserved = self.next - 1;
        for cts in 1..=reserved {
            if !self.published.contains(&cts) {
                out.push(Violation {
                    checker: "csmv",
                    warp: usize::MAX,
                    clock: u64::MAX,
                    addr: u64::MAX,
                    message: format!(
                        "cts {cts} was reserved but never published to the ATR — \
                         the published set must be dense 1..={reserved}"
                    ),
                });
            }
        }
        if self.published.len() as u64 != reserved {
            out.push(Violation {
                checker: "csmv",
                warp: usize::MAX,
                clock: u64::MAX,
                addr: u64::MAX,
                message: format!(
                    "{} distinct ctss published but only {reserved} were reserved",
                    self.published.len()
                ),
            });
        }
        if self.gts_batch != self.batches.len() {
            out.push(Violation {
                checker: "csmv",
                warp: usize::MAX,
                clock: u64::MAX,
                addr: u64::MAX,
                message: format!(
                    "{} batches reserved but the GTS was only bumped {} times",
                    self.batches.len(),
                    self.gts_batch
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-server checker
// ---------------------------------------------------------------------------

/// Per-partition publication state tracked by [`MultiCsmvInvariantChecker`].
struct PartitionState {
    atr: PartitionedAtr,
    /// Slot 0's seq-tag address and the per-slot stride (the ring keeps its
    /// base private; two slot addresses recover the layout).
    seq0: u64,
    stride: u64,
    /// Latest seq tag per slot (tags are `local_seq + 1`, so 0 = unset).
    last_tag: HashMap<u64, u64>,
    /// Latest cts word written per slot (candidate until the tag publishes).
    slot_cts: HashMap<u64, u64>,
    /// cts by published seq tag — the local-order/global-order alignment.
    cts_by_tag: HashMap<u64, u64>,
    /// Highest published seq tag.
    max_tag: u64,
    /// Mirror of the `next_local` word.
    next_local: u64,
}

/// Protocol-invariant checker for the multi-server variant. See the module
/// docs for the relaxed obligations (1'–4') it enforces.
pub struct MultiCsmvInvariantChecker {
    heap: VBoxHeap,
    gts_addr: u64,
    global_cts_addr: u64,
    first_server_sm: usize,
    parts: Vec<PartitionState>,
    // Derived VBox geometry.
    h0: u64,
    words_per_box: u64,
    /// Mirror of the global reservation counter (host-initialised to 1).
    next_global: u64,
    gts: u64,
    /// cts values published device-wide (tag written in some partition).
    published: HashSet<u64>,
    /// When false (kill/crash fault plans), the GTS may be held flat by a
    /// quarantine hole-skip and reserved timestamps may never publish, so
    /// only the per-event ordering obligations are enforced.
    expect_complete: bool,
}

impl MultiCsmvInvariantChecker {
    /// Build a checker for one multi-server launch. `atrs[i]` is the ring
    /// of the server on SM `first_server_sm + i`; `expect_complete` is
    /// false when the fault plan kills warps or crashes SMs.
    pub fn new(
        atrs: Vec<PartitionedAtr>,
        heap: VBoxHeap,
        gts_addr: u64,
        global_cts_addr: u64,
        first_server_sm: usize,
        expect_complete: bool,
    ) -> Self {
        let h0 = heap.head_addr(0);
        let words_per_box = 1 + heap.versions_per_box();
        let parts = atrs
            .into_iter()
            .map(|atr| {
                let seq0 = atr.slot_seq_addr(0);
                let stride = atr.slot_seq_addr(1) - seq0;
                PartitionState {
                    atr,
                    seq0,
                    stride,
                    last_tag: HashMap::new(),
                    slot_cts: HashMap::new(),
                    cts_by_tag: HashMap::new(),
                    max_tag: 0,
                    next_local: 0,
                }
            })
            .collect();
        Self {
            heap,
            gts_addr,
            global_cts_addr,
            first_server_sm,
            parts,
            h0,
            words_per_box,
            next_global: 1,
            gts: 0,
            published: HashSet::new(),
            expect_complete,
        }
    }

    fn violation(ev: &MemEvent, message: String) -> Violation {
        Violation {
            checker: "csmv-multi",
            warp: ev.warp,
            clock: ev.clock,
            addr: ev.addr,
            message,
        }
    }

    /// Obligation 1': a batch reservation on the global counter.
    fn on_reserve(&mut self, ev: &MemEvent, base: u64, n: u64, out: &mut Vec<Violation>) {
        if n == 0 {
            out.push(Self::violation(
                ev,
                "empty cts reservation (fetch-add of 0) — workers must skip \
                 all-abort batches"
                    .into(),
            ));
        }
        if base != self.next_global {
            out.push(Self::violation(
                ev,
                format!(
                    "cts reservation observed counter {base} but the reservation \
                     history says {}",
                    self.next_global
                ),
            ));
        }
        self.next_global = base.wrapping_add(n);
    }

    /// Obligation 2' (and the alignment half of 1'): a seq-tag write
    /// publishing one ATR entry.
    fn on_tag_write(
        &mut self,
        ev: &MemEvent,
        srv: usize,
        slot: u64,
        tag: u64,
        out: &mut Vec<Violation>,
    ) {
        let p = &mut self.parts[srv];
        if tag == 0 {
            out.push(Self::violation(
                ev,
                "published seq tag 0 (tags are local_seq + 1, so 0 means unset)".into(),
            ));
            return;
        }
        if p.atr.slot_of(tag - 1) != slot {
            out.push(Self::violation(
                ev,
                format!(
                    "seq tag {tag} published into slot {slot}, but the ring maps \
                     local seq {} to slot {}",
                    tag - 1,
                    p.atr.slot_of(tag - 1)
                ),
            ));
        }
        if let Some(&prev) = p.last_tag.get(&slot) {
            if tag <= prev {
                out.push(Self::violation(
                    ev,
                    format!(
                        "partition {srv} slot {slot} seq tag went from {prev} to {tag} — \
                         per-slot tags must strictly increase (ring recycling only \
                         moves forward)"
                    ),
                ));
            }
        }
        p.last_tag.insert(slot, tag);
        p.max_tag = p.max_tag.max(tag);

        // The entry's cts: written to the slot before the tag, reserved
        // before that, published exactly once device-wide, and — the
        // multi-server alignment invariant — strictly above the cts of the
        // previous local seq.
        match p.slot_cts.get(&slot).copied() {
            None => out.push(Self::violation(
                ev,
                format!(
                    "partition {srv} published seq tag {tag} before writing the \
                     slot's cts word"
                ),
            )),
            Some(cts) => {
                if cts == 0 || cts >= self.next_global {
                    out.push(Self::violation(
                        ev,
                        format!(
                            "partition {srv} published cts {cts} which was never \
                             reserved (global counter is {})",
                            self.next_global
                        ),
                    ));
                }
                if let Some(&prev_cts) = p.cts_by_tag.get(&(tag - 1)) {
                    if cts <= prev_cts {
                        out.push(Self::violation(
                            ev,
                            format!(
                                "partition {srv} local order diverged from global cts \
                                 order: seq tag {} carries cts {prev_cts}, tag {tag} \
                                 carries cts {cts}",
                                tag - 1
                            ),
                        ));
                    }
                }
                p.cts_by_tag.insert(tag, cts);
                if !self.published.insert(cts) {
                    out.push(Self::violation(
                        ev,
                        format!("cts {cts} published twice across partitions"),
                    ));
                }
            }
        }
    }

    /// Obligation 3': a write (or quarantine hole-skip CAS) on the GTS.
    fn on_gts_update(&mut self, ev: &MemEvent, value: u64, out: &mut Vec<Violation>) {
        // Two publishers that observed the same run may both write the same
        // value; only outright regression is a violation.
        if value < self.gts {
            out.push(Self::violation(
                ev,
                format!(
                    "GTS moved from {} to {value} — progressive publication must \
                     not regress",
                    self.gts
                ),
            ));
        }
        if value >= self.next_global {
            out.push(Self::violation(
                ev,
                format!(
                    "GTS bumped to {value}, overtaking the reservation counter ({})",
                    self.next_global
                ),
            ));
        }
        self.gts = self.gts.max(value);
    }

    /// Obligation 4': a write into the VBox heap region.
    fn on_heap_write(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        let off = ev.addr - self.h0;
        let item = off / self.words_per_box;
        if off.is_multiple_of(self.words_per_box) {
            if ev.value >= self.heap.versions_per_box() {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} head set to {} but only {} version slots exist",
                        ev.value,
                        self.heap.versions_per_box()
                    ),
                ));
            }
        } else {
            let (ts, _) = unpack_version(ev.value);
            if !self.published.contains(&ts) {
                out.push(Self::violation(
                    ev,
                    format!(
                        "VBox {item} version installed with cts {ts}, which no \
                         partition ever published — write-back before validation"
                    ),
                ));
            }
        }
    }
}

impl InvariantChecker for MultiCsmvInvariantChecker {
    fn name(&self) -> &'static str {
        "csmv-multi"
    }

    fn on_event(&mut self, ev: &MemEvent, out: &mut Vec<Violation>) {
        match ev.space {
            Space::Shared => {
                let Some(srv) = ev.sm.checked_sub(self.first_server_sm) else {
                    return;
                };
                if srv >= self.parts.len() {
                    return;
                }
                let p = &mut self.parts[srv];
                if ev.addr == p.atr.next_local_addr() {
                    if ev.kind == AccessKind::Write && ev.value != 0 {
                        if ev.value <= p.next_local {
                            out.push(Self::violation(
                                ev,
                                format!(
                                    "partition {srv} next_local went from {} to {} — \
                                     the local seq line must strictly increase",
                                    p.next_local, ev.value
                                ),
                            ));
                        }
                        p.next_local = ev.value;
                    }
                    return;
                }
                if ev.kind == AccessKind::Write && ev.addr >= p.seq0 {
                    let off = ev.addr - p.seq0;
                    let slot = off / p.stride;
                    if slot < p.atr.capacity() {
                        let word = off % p.stride;
                        if word == 0 {
                            self.on_tag_write(ev, srv, slot, ev.value, out);
                        } else if word == 1 {
                            self.parts[srv].slot_cts.insert(slot, ev.value);
                        }
                    }
                }
            }
            Space::Global => {
                if ev.addr == self.global_cts_addr {
                    if let AccessKind::Add { operand } = ev.kind {
                        self.on_reserve(ev, ev.value, operand, out);
                    }
                    return;
                }
                if ev.addr == self.gts_addr {
                    match ev.kind {
                        AccessKind::Write => self.on_gts_update(ev, ev.value, out),
                        AccessKind::Cas {
                            new, success: true, ..
                        } => self.on_gts_update(ev, new, out),
                        _ => {}
                    }
                    return;
                }
                let heap_end = self.h0 + self.heap.num_items() * self.words_per_box;
                if ev.kind == AccessKind::Write && ev.addr >= self.h0 && ev.addr < heap_end {
                    self.on_heap_write(ev, out);
                }
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<Violation>) {
        if !self.expect_complete {
            return;
        }
        let end_violation = |message: String| Violation {
            checker: "csmv-multi",
            warp: usize::MAX,
            clock: u64::MAX,
            addr: u64::MAX,
            message,
        };
        for (srv, p) in self.parts.iter().enumerate() {
            for tag in 1..=p.max_tag {
                if !p.cts_by_tag.contains_key(&tag) {
                    out.push(end_violation(format!(
                        "partition {srv} seq tag {tag} was never published — the \
                         local seq line must be gap-free up to {}",
                        p.max_tag
                    )));
                }
            }
            if p.next_local != p.max_tag {
                out.push(end_violation(format!(
                    "partition {srv} next_local ended at {} but the highest \
                     published seq tag is {}",
                    p.next_local, p.max_tag
                )));
            }
        }
        let reserved = self.next_global - 1;
        for cts in 1..=reserved {
            if !self.published.contains(&cts) {
                out.push(end_violation(format!(
                    "cts {cts} was reserved but never published — the published \
                     set must be dense 1..={reserved}"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        run, CommitProtocol, CsmvClient, CsmvConfig, CsmvVariant, ReceiverWarp, ServerControl,
        WorkerWarp,
    };
    use gpu_sim::{AnalysisConfig, Device, GpuConfig};
    use workloads::{BankConfig, BankSource};

    fn analysed_cfg(variant: CsmvVariant) -> CsmvConfig {
        let gpu = GpuConfig {
            num_sms: 5,
            ..Default::default()
        };
        CsmvConfig {
            gpu,
            variant,
            server_workers: 3,
            analysis: AnalysisConfig {
                races: true,
                invariants: true,
            },
            ..Default::default()
        }
    }

    /// Every stock variant must come out of a contended run with zero races
    /// and zero protocol violations — the analysis layer's "no false
    /// positives" baseline.
    #[test]
    fn stock_variants_run_clean_under_full_analysis() {
        for (variant, seed) in [
            (CsmvVariant::Full, 42),
            (CsmvVariant::NoCv, 43),
            (CsmvVariant::OnlyCs, 44),
        ] {
            let cfg = analysed_cfg(variant);
            let bank = BankConfig::small(64, 30);
            let res = run(
                &cfg,
                |t| BankSource::new(&bank, seed, t, 3),
                bank.accounts,
                |_| bank.initial_balance,
            );
            let report = res.analysis.expect("analysis was enabled");
            assert!(report.events > 0, "analysis must have observed the run");
            assert!(
                report.is_clean(),
                "variant {variant:?}: races {:?}, violations {:?}",
                report.races,
                report.violations
            );
        }
    }

    /// ATR ring recycling (tiny window, forced wrap-around) exercises the
    /// seqlock-style tag re-check paths; they must stay clean too.
    #[test]
    fn atr_window_overflow_runs_clean_under_full_analysis() {
        let mut cfg = analysed_cfg(CsmvVariant::Full);
        cfg.atr_capacity = 4;
        cfg.versions_per_box = 16;
        let bank = BankConfig::small(16, 0);
        let res = run(
            &cfg,
            |t| BankSource::new(&bank, 9, t, 2),
            bank.accounts,
            |_| bank.initial_balance,
        );
        let report = res.analysis.expect("analysis was enabled");
        assert!(
            report.is_clean(),
            "races {:?}, violations {:?}",
            report.races,
            report.violations
        );
    }

    /// Seeded protocol bug: one warp skips the GTS turn-taking wait and
    /// publishes its batch out of order. The checker must flag the first
    /// out-of-turn bump. The run is stepped manually so we can stop at the
    /// first violation — past that point the protocol is genuinely broken
    /// (healthy warps assert that the GTS never overtakes their batch).
    #[test]
    fn seeded_skip_gts_wait_is_detected() {
        let cfg = analysed_cfg(CsmvVariant::Full);
        let bank = BankConfig::small(64, 0); // all-update workload
        let server_sm = cfg.gpu.num_sms - 1;
        let num_clients = cfg.num_client_warps();

        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = stm_core::VBoxHeap::init(
            dev.global_mut(),
            bank.accounts,
            cfg.versions_per_box,
            |_| bank.initial_balance,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc(&mut dev, server_sm, num_clients);
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);
        dev.enable_analysis(cfg.analysis);
        dev.add_invariant_checker(Box::new(CsmvInvariantChecker::new(
            atr.clone(),
            heap.clone(),
            gts_addr,
            server_sm,
        )));

        let mut thread_id = 0;
        let mut slot = 0;
        for sm in 0..server_sm {
            for _ in 0..cfg.warps_per_sm {
                let sources: Vec<BankSource> = (0..32)
                    .map(|i| BankSource::new(&bank, 7, thread_id + i, 4))
                    .collect();
                let mut client = CsmvClient::new(
                    sources,
                    thread_id,
                    Default::default(),
                    heap.clone(),
                    proto.clone(),
                    slot,
                    gts_addr,
                    done_addr,
                    cfg.variant,
                );
                if slot == num_clients - 1 {
                    client.inject_skip_gts_wait();
                }
                dev.spawn(sm, Box::new(client));
                thread_id += 32;
                slot += 1;
            }
        }
        dev.spawn(
            server_sm,
            Box::new(ReceiverWarp::new(
                proto.clone(),
                ctl.clone(),
                num_clients,
                done_addr,
            )),
        );
        for _ in 0..cfg.server_workers {
            dev.spawn(
                server_sm,
                Box::new(WorkerWarp::new(
                    proto.clone(),
                    ctl.clone(),
                    atr.clone(),
                    heap.clone(),
                    gts_addr,
                    cfg.variant,
                )),
            );
        }

        for _ in 0..50_000_000u64 {
            if dev.analysis().is_some_and(|a| a.violation_count() > 0) {
                let v = &dev.analysis().unwrap().violations()[0];
                assert_eq!(v.checker, "csmv");
                assert!(
                    v.message.contains("out of turn") || v.message.contains("turn-taking"),
                    "unexpected violation: {v}"
                );
                return;
            }
            if dev.live_warps() == 0 {
                panic!("run completed without the seeded bug being detected");
            }
            dev.step_once();
        }
        panic!("run neither finished nor produced a violation");
    }

    /// A single client warp that skips the wait is always "next in line", so
    /// the skip is unobservable and must NOT be flagged — the checker keys on
    /// protocol order, not on which code path produced the bump.
    #[test]
    fn single_client_skip_is_benign() {
        let gpu = GpuConfig {
            num_sms: 2,
            ..Default::default()
        }; // 1 client SM + server
        let cfg = CsmvConfig {
            gpu,
            server_workers: 2,
            warps_per_sm: 1,
            analysis: AnalysisConfig {
                races: true,
                invariants: true,
            },
            ..Default::default()
        };
        let bank = BankConfig::small(16, 0);
        let server_sm = cfg.gpu.num_sms - 1;
        let num_clients = cfg.num_client_warps();

        let mut dev = Device::new(cfg.gpu.clone());
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let heap = stm_core::VBoxHeap::init(
            dev.global_mut(),
            bank.accounts,
            cfg.versions_per_box,
            |_| bank.initial_balance,
        );
        let proto = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let atr = SharedAtr::alloc(&mut dev, server_sm, cfg.atr_capacity, cfg.max_ws);
        let ctl = ServerControl::alloc(&mut dev, server_sm, num_clients);
        dev.shared_write_host(server_sm, atr.next_cts_addr(), 1);
        dev.enable_analysis(cfg.analysis);
        dev.add_invariant_checker(Box::new(CsmvInvariantChecker::new(
            atr.clone(),
            heap.clone(),
            gts_addr,
            server_sm,
        )));

        let sources: Vec<BankSource> = (0..32).map(|i| BankSource::new(&bank, 3, i, 3)).collect();
        let mut client = CsmvClient::new(
            sources,
            0,
            Default::default(),
            heap.clone(),
            proto.clone(),
            0,
            gts_addr,
            done_addr,
            cfg.variant,
        );
        client.inject_skip_gts_wait();
        dev.spawn(0, Box::new(client));
        dev.spawn(
            server_sm,
            Box::new(ReceiverWarp::new(
                proto.clone(),
                ctl.clone(),
                num_clients,
                done_addr,
            )),
        );
        for _ in 0..cfg.server_workers {
            dev.spawn(
                server_sm,
                Box::new(WorkerWarp::new(
                    proto.clone(),
                    ctl.clone(),
                    atr.clone(),
                    heap.clone(),
                    gts_addr,
                    cfg.variant,
                )),
            );
        }
        dev.run_to_completion();
        let report = dev.finish_analysis().expect("analysis enabled");
        assert_eq!(
            report.violations.len(),
            0,
            "violations: {:?}",
            report.violations
        );
    }

    // -- multi-server checker (synthetic event streams) ---------------------

    mod multi_checker {
        use super::*;
        use gpu_sim::MemOrder;
        use stm_core::vbox::pack_version;

        fn fixture(expect_complete: bool) -> (MultiCsmvInvariantChecker, PartitionedAtr, VBoxHeap) {
            let mut dev = Device::new(GpuConfig::default());
            let gts = dev.alloc_global(1);
            let cts = dev.alloc_global(1);
            let heap = VBoxHeap::init(dev.global_mut(), 4, 4, &mut |_| 0);
            let atr = PartitionedAtr::alloc(&mut dev, 0, 4, 2);
            let chk = MultiCsmvInvariantChecker::new(
                vec![atr.clone()],
                heap.clone(),
                gts,
                cts,
                0,
                expect_complete,
            );
            (chk, atr, heap)
        }

        fn ev(space: Space, addr: u64, kind: AccessKind, value: u64) -> MemEvent {
            MemEvent {
                warp: 0,
                sm: 0,
                clock: 0,
                space,
                addr,
                kind,
                value,
                order: MemOrder::Release,
            }
        }

        fn drive(chk: &mut MultiCsmvInvariantChecker, evs: &[MemEvent]) -> Vec<Violation> {
            let mut out = Vec::new();
            for e in evs {
                chk.on_event(e, &mut out);
            }
            out
        }

        /// The two publication writes for local seq `seq` carrying `cts`.
        fn publish(atr: &PartitionedAtr, seq: u64, cts: u64) -> [MemEvent; 2] {
            let slot = atr.slot_of(seq);
            [
                ev(
                    Space::Shared,
                    atr.slot_cts_addr(slot),
                    AccessKind::Write,
                    cts,
                ),
                ev(
                    Space::Shared,
                    atr.slot_seq_addr(slot),
                    AccessKind::Write,
                    seq + 1,
                ),
            ]
        }

        fn reserve(
            chk: &mut MultiCsmvInvariantChecker,
            cts_addr: u64,
            base: u64,
            n: u64,
        ) -> Vec<Violation> {
            drive(
                chk,
                &[ev(
                    Space::Global,
                    cts_addr,
                    AccessKind::Add { operand: n },
                    base,
                )],
            )
        }

        #[test]
        fn healthy_synthetic_stream_is_clean() {
            let (mut chk, atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            let gts_addr = chk.gts_addr;
            assert!(reserve(&mut chk, cts_addr, 1, 2).is_empty());
            let mut evs = Vec::new();
            evs.extend(publish(&atr, 0, 1));
            evs.extend(publish(&atr, 1, 2));
            evs.push(ev(
                Space::Shared,
                atr.next_local_addr(),
                AccessKind::Write,
                2,
            ));
            evs.push(ev(Space::Global, gts_addr, AccessKind::Write, 2));
            let v = drive(&mut chk, &evs);
            assert!(v.is_empty(), "{v:?}");
            let mut out = Vec::new();
            chk.finish(&mut out);
            assert!(out.is_empty(), "{out:?}");
        }

        #[test]
        fn gts_regression_is_flagged() {
            let (mut chk, atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            let gts_addr = chk.gts_addr;
            reserve(&mut chk, cts_addr, 1, 3);
            let mut evs = Vec::new();
            evs.extend(publish(&atr, 0, 1));
            evs.extend(publish(&atr, 1, 2));
            evs.push(ev(Space::Global, gts_addr, AccessKind::Write, 2));
            assert!(drive(&mut chk, &evs).is_empty());
            let v = drive(
                &mut chk,
                &[ev(Space::Global, gts_addr, AccessKind::Write, 1)],
            );
            assert_eq!(v.len(), 1, "{v:?}");
            assert!(v[0].message.contains("regress"), "{}", v[0].message);
        }

        #[test]
        fn gts_overtaking_reservations_is_flagged() {
            let (mut chk, _atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            let gts_addr = chk.gts_addr;
            reserve(&mut chk, cts_addr, 1, 1);
            // A successful quarantine CAS that skips past the counter.
            let v = drive(
                &mut chk,
                &[ev(
                    Space::Global,
                    gts_addr,
                    AccessKind::Cas {
                        expected: 0,
                        new: 2,
                        success: true,
                    },
                    0,
                )],
            );
            assert_eq!(v.len(), 1, "{v:?}");
            assert!(v[0].message.contains("overtaking"), "{}", v[0].message);
        }

        #[test]
        fn unreserved_cts_publication_is_flagged() {
            let (mut chk, atr, _heap) = fixture(true);
            let v = drive(&mut chk, &publish(&atr, 0, 5));
            assert_eq!(v.len(), 1, "{v:?}");
            assert!(v[0].message.contains("never reserved"), "{}", v[0].message);
        }

        #[test]
        fn local_order_diverging_from_cts_order_is_flagged() {
            let (mut chk, atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            reserve(&mut chk, cts_addr, 1, 2);
            let mut evs = Vec::new();
            evs.extend(publish(&atr, 0, 2));
            evs.extend(publish(&atr, 1, 1));
            let v = drive(&mut chk, &evs);
            assert_eq!(v.len(), 1, "{v:?}");
            assert!(v[0].message.contains("local order"), "{}", v[0].message);
        }

        #[test]
        fn stale_per_slot_tag_is_flagged() {
            let (mut chk, atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            reserve(&mut chk, cts_addr, 1, 2);
            // Re-publishing the same tag into slot 0 (a stale recycled
            // entry) must trip the per-slot tag monotonicity.
            let mut evs = Vec::new();
            evs.extend(publish(&atr, 0, 1));
            evs.extend(publish(&atr, 0, 2));
            let v = drive(&mut chk, &evs);
            assert!(
                v.iter().any(|v| v.message.contains("strictly increase")),
                "{v:?}"
            );
        }

        #[test]
        fn writeback_of_unpublished_cts_is_flagged() {
            let (mut chk, atr, heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            reserve(&mut chk, cts_addr, 1, 2);
            let mut evs: Vec<MemEvent> = publish(&atr, 0, 1).into();
            // cts 2 is reserved but not yet published: installing a version
            // carrying it means the client wrote back before validation.
            evs.push(ev(
                Space::Global,
                heap.head_addr(1) + 1,
                AccessKind::Write,
                pack_version(2, 77),
            ));
            let v = drive(&mut chk, &evs);
            assert_eq!(v.len(), 1, "{v:?}");
            assert!(
                v[0].message.contains("write-back before validation"),
                "{}",
                v[0].message
            );
        }

        #[test]
        fn finish_flags_reserved_but_unpublished_cts() {
            let (mut chk, atr, _heap) = fixture(true);
            let cts_addr = chk.global_cts_addr;
            reserve(&mut chk, cts_addr, 1, 2);
            let mut evs: Vec<MemEvent> = publish(&atr, 0, 1).into();
            evs.push(ev(
                Space::Shared,
                atr.next_local_addr(),
                AccessKind::Write,
                1,
            ));
            assert!(drive(&mut chk, &evs).is_empty());
            let mut out = Vec::new();
            chk.finish(&mut out);
            assert_eq!(out.len(), 1, "{out:?}");
            assert!(out[0].message.contains("reserved but never published"));
        }

        #[test]
        fn incomplete_runs_skip_end_of_run_checks() {
            let (mut chk, atr, _heap) = fixture(false);
            let cts_addr = chk.global_cts_addr;
            reserve(&mut chk, cts_addr, 1, 2);
            let evs: Vec<MemEvent> = publish(&atr, 0, 1).into();
            assert!(drive(&mut chk, &evs).is_empty());
            let mut out = Vec::new();
            chk.finish(&mut out);
            assert!(out.is_empty(), "{out:?}");
        }
    }
}
