//! The Active Transaction Record in the server SM's **shared (on-chip)
//! memory** — the centerpiece of CSMV's client–server design: commit
//! metadata lives where atomics and reads are an order of magnitude cheaper
//! than in global memory.
//!
//! The ATR is a ring of `capacity` entries tagged with their commit
//! timestamp:
//!
//! ```text
//! word 0                      : next_cts — next commit timestamp to assign
//!                               (starts at 1); reserved via a single
//!                               CAS/fetch-add per *batch* (batched insert)
//! word 1 + s·(2 + max_ws)     : entry in ring slot s =
//!                               [cts][ws_len][ws item ids × max_ws]
//! ```
//!
//! The entry for commit timestamp `c` lives in slot `(c − 1) % capacity`.
//! Writers fill items and `ws_len` first and publish by writing the `cts`
//! word last; validators needing entry `c` poll until the slot's `cts` word
//! equals `c` (ring recycling guarantees a stale slot holds a *smaller*
//! cts). A transaction whose snapshot is more than `capacity` commits behind
//! `next_cts` cannot validate — it aborts conservatively (the "spurious
//! aborts" of the paper's future-work discussion).

use gpu_sim::Device;

/// Address map of the shared-memory ATR (addresses are SM-local).
#[derive(Debug, Clone)]
pub struct SharedAtr {
    base: u64,
    capacity: u64,
    max_ws: usize,
}

impl SharedAtr {
    /// Allocate the ATR in `sm`'s shared memory.
    pub fn alloc(dev: &mut Device, sm: usize, capacity: u64, max_ws: usize) -> Self {
        let words = 1 + capacity as usize * (2 + max_ws);
        let base = dev.alloc_shared(sm, words);
        Self {
            base,
            capacity,
            max_ws,
        }
    }

    /// Ring capacity in entries.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Write-set capacity per entry.
    pub fn max_ws(&self) -> usize {
        self.max_ws
    }

    /// Address of the `next_cts` word.
    pub fn next_cts_addr(&self) -> u64 {
        self.base
    }

    /// Ring slot of commit timestamp `cts` (1-based).
    pub fn slot_of(&self, cts: u64) -> u64 {
        debug_assert!(cts >= 1);
        (cts - 1) % self.capacity
    }

    /// Address of slot `s`'s cts tag word.
    pub fn slot_cts_addr(&self, s: u64) -> u64 {
        debug_assert!(s < self.capacity);
        self.base + 1 + s * (2 + self.max_ws as u64)
    }

    /// Address of slot `s`'s `ws_len` word.
    pub fn slot_len_addr(&self, s: u64) -> u64 {
        self.slot_cts_addr(s) + 1
    }

    /// Address of slot `s`'s `k`-th write-set item word.
    pub fn slot_item_addr(&self, s: u64, k: u64) -> u64 {
        debug_assert!((k as usize) < self.max_ws);
        self.slot_len_addr(s) + 1 + k
    }

    /// Whether a transaction with this snapshot can still be validated, given
    /// the current `next_cts`: every entry in `(snapshot, next_cts)` must
    /// still be resident in the ring.
    pub fn snapshot_in_window(&self, snapshot: u64, next_cts: u64) -> bool {
        crate::steps::snapshot_in_window(snapshot, next_cts, self.capacity)
    }

    /// Live entries in the ring, given the current `next_cts`: the number of
    /// timestamps ever published, saturating at the ring capacity once old
    /// slots start being recycled.
    pub fn occupancy(&self, next_cts: u64) -> u64 {
        next_cts.saturating_sub(1).min(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn atr() -> SharedAtr {
        let mut dev = Device::new(GpuConfig::default());
        SharedAtr::alloc(&mut dev, 0, 8, 3)
    }

    #[test]
    fn slots_wrap_around() {
        let a = atr();
        assert_eq!(a.slot_of(1), 0);
        assert_eq!(a.slot_of(8), 7);
        assert_eq!(a.slot_of(9), 0);
        assert_eq!(a.slot_of(17), 0);
    }

    #[test]
    fn layout_is_disjoint() {
        let a = atr();
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(a.next_cts_addr()));
        for s in 0..8 {
            assert!(seen.insert(a.slot_cts_addr(s)));
            assert!(seen.insert(a.slot_len_addr(s)));
            for k in 0..3 {
                assert!(seen.insert(a.slot_item_addr(s, k)));
            }
        }
    }

    #[test]
    fn window_check_matches_capacity() {
        let a = atr();
        // next_cts = 10: entries 1..9 ever existed; ring holds the last 8
        // (cts 2..9). A snapshot of 1 needs entries 2..9 — exactly resident.
        assert!(a.snapshot_in_window(1, 10));
        // Snapshot 0 needs entry 1, already recycled.
        assert!(!a.snapshot_in_window(0, 10));
        // Fresh snapshots are always fine.
        assert!(a.snapshot_in_window(9, 10));
        assert!(a.snapshot_in_window(0, 1));
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let a = atr();
        assert_eq!(a.occupancy(1), 0); // nothing committed yet
        assert_eq!(a.occupancy(5), 4);
        assert_eq!(a.occupancy(9), 8); // exactly full
        assert_eq!(a.occupancy(100), 8); // recycling: still full
    }
}
