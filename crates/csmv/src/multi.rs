//! Multi-server CSMV — a prototype of the paper's first future-work
//! direction (§V): *"a commit scheme that relies on multiple servers, each
//! active on a different SM"*, attacking the single server's scalability
//! ceiling and its under-use of the device's aggregate scratchpad.
//!
//! Design (documented restrictions included):
//!
//! * Transactional items are **hash-partitioned** across `num_servers`
//!   commit servers (`partition = item % num_servers`); each server SM owns
//!   a [`PartitionedAtr`] in its *own* shared memory, so the aggregate ATR
//!   capacity scales with the server count — directly addressing the
//!   spurious-abort problem of the bounded single ring.
//! * **Update transactions must be partition-confined**: every item they
//!   read or write lives in one partition (asserted at submission). This is
//!   the simplification that makes per-partition validation sound —
//!   conflicting transactions always meet at the same server. Cross-
//!   partition update transactions would need a distributed commit, which
//!   the paper leaves open and so do we. **Read-only transactions are
//!   unrestricted**: as in all MV-STMs they validate nothing.
//! * Commit timestamps come from a **global counter in device memory**,
//!   reserved with one `fetch-add` per *batch* — the single point of
//!   coordination, amortized exactly like the batched ATR insert. A
//!   server-local reservation lock keeps each partition's local insertion
//!   order aligned with global cts order, so validators can walk the local
//!   ring backwards and stop at the first entry at-or-before their
//!   snapshot.
//! * Because one warp's batch may now split across servers, its commit
//!   timestamps are no longer consecutive; clients publish **progressively**
//!   (each committed transaction bumps the GTS when its turn arrives,
//!   runs of consecutive timestamps bump in one write).

use gpu_sim::channel::{STATUS_EMPTY, STATUS_REQUEST, STATUS_RESPONSE};
use gpu_sim::fault::FaultPlan;
use gpu_sim::{
    full_mask, AnalysisConfig, Device, GpuConfig, Mask, MemOrder, RunMode, StepOutcome, WarpCtx,
    WarpProgram, WARP_LANES,
};
use stm_core::mv_exec::{unpack_ws_entry, MvExec, MvExecConfig};
use stm_core::{
    AbortReason, FaultEvent, MetricsReport, Phase, RetryPolicy, RunResult, TxSource, VBoxHeap,
};

use crate::protocol::{
    pack_abort, pack_commit, unpack_outcome, CommitProtocol, Outcome, RequestSetArea, OUTCOME_NONE,
};
use crate::server::{ReceiverWarp, ServerControl};
use crate::steps::{self, TagState};
use crate::RunError;

/// Configuration of a multi-server CSMV launch.
#[derive(Debug, Clone)]
pub struct MultiCsmvConfig {
    /// Device geometry; the last `num_servers` SMs run commit servers.
    pub gpu: GpuConfig,
    /// Number of commit-server SMs.
    pub num_servers: usize,
    /// Versions per VBox.
    pub versions_per_box: u64,
    /// Client warps per client SM.
    pub warps_per_sm: usize,
    /// Worker warps per server SM (plus one receiver each).
    pub server_workers: usize,
    /// Read-set capacity per thread.
    pub max_rs: usize,
    /// Write-set capacity per thread.
    pub max_ws: usize,
    /// ATR ring capacity per server, in entries.
    pub atr_capacity: u64,
    /// Record per-transaction histories.
    pub record_history: bool,
    /// Analysis layer. With `invariants` on, a
    /// [`crate::check::MultiCsmvInvariantChecker`] re-derives the relaxed
    /// multi-server obligations (progressive GTS publication, per-partition
    /// seq lines aligned with global cts order) alongside the race
    /// detector.
    pub analysis: AnalysisConfig,
    /// Host execution mode; `Parallel` falls back to an identical
    /// sequential re-run on a cross-SM window conflict (the shared
    /// global-cts counter couples the server SMs; results are bit-identical
    /// either way).
    pub sim: RunMode,
    /// Client-side failure recovery (response timeouts, backoff, retry
    /// budget). The default policy is inert.
    pub recovery: RetryPolicy,
    /// Deterministic fault plan installed on the device before launch.
    pub faults: Option<FaultPlan>,
    /// Watchdog: abort the run with [`RunError::Stalled`] when no warp makes
    /// non-polling progress for this many cycles.
    pub max_idle_cycles: Option<u64>,
    /// Liveness patience: a partition whose receiver heartbeat is older than
    /// this many cycles is quarantined (its in-flight transactions fail with
    /// [`AbortReason::ServerUnavailable`]; surviving partitions keep
    /// committing). `None` disables heartbeat checking.
    pub heartbeat_patience: Option<u64>,
}

impl Default for MultiCsmvConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            num_servers: 2,
            versions_per_box: 4,
            warps_per_sm: 2,
            server_workers: 3,
            max_rs: 64,
            max_ws: 8,
            atr_capacity: 384,
            record_history: true,
            analysis: AnalysisConfig::default(),
            sim: RunMode::Sequential,
            recovery: RetryPolicy::default(),
            faults: None,
            max_idle_cycles: Some(1_000_000),
            heartbeat_patience: None,
        }
    }
}

impl MultiCsmvConfig {
    /// Client warps (every SM not running a server).
    pub fn num_client_warps(&self) -> usize {
        (self.gpu.num_sms - self.num_servers) * self.warps_per_sm
    }

    /// Total client threads.
    pub fn num_threads(&self) -> usize {
        self.num_client_warps() * WARP_LANES
    }

    /// The partition an item belongs to.
    pub fn partition_of(&self, item: u64) -> usize {
        (item % self.num_servers as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Partitioned ATR: local ring, global commit timestamps
// ---------------------------------------------------------------------------

/// One server's ATR: ring slots tagged with a *local* sequence number,
/// each carrying the entry's *global* commit timestamp.
///
/// ```text
/// word 0                    : reservation lock (0 free / 1 held)
/// word 1                    : next_local — local sequence of the next entry
/// word 2 + s·(3 + max_ws)   : slot s = [seq][cts][ws_len][items × max_ws]
/// ```
///
/// Local sequence order equals global cts order (reservations happen under
/// the lock), so a validator walks backwards from `next_local − 1` and can
/// stop at the first entry whose cts ≤ its snapshot.
#[derive(Debug, Clone)]
pub struct PartitionedAtr {
    base: u64,
    capacity: u64,
    max_ws: usize,
}

impl PartitionedAtr {
    /// Allocate in `sm`'s shared memory.
    pub fn alloc(dev: &mut Device, sm: usize, capacity: u64, max_ws: usize) -> Self {
        let words = 2 + capacity as usize * (3 + max_ws);
        let base = dev.alloc_shared(sm, words);
        Self {
            base,
            capacity,
            max_ws,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Address of the reservation lock.
    pub fn lock_addr(&self) -> u64 {
        self.base
    }

    /// Address of the `next_local` word.
    pub fn next_local_addr(&self) -> u64 {
        self.base + 1
    }

    /// Ring slot of local sequence `seq` (0-based).
    pub fn slot_of(&self, seq: u64) -> u64 {
        seq % self.capacity
    }

    /// Address of slot `s`'s local-sequence tag (published last; the tag for
    /// sequence `seq` is `seq + 1`, so 0 means "never written").
    pub fn slot_seq_addr(&self, s: u64) -> u64 {
        self.base + 2 + s * (3 + self.max_ws as u64)
    }

    /// Address of slot `s`'s global-cts word.
    pub fn slot_cts_addr(&self, s: u64) -> u64 {
        self.slot_seq_addr(s) + 1
    }

    /// Address of slot `s`'s `ws_len` word.
    pub fn slot_len_addr(&self, s: u64) -> u64 {
        self.slot_seq_addr(s) + 2
    }

    /// Address of slot `s`'s `k`-th item word.
    pub fn slot_item_addr(&self, s: u64, k: u64) -> u64 {
        debug_assert!((k as usize) < self.max_ws);
        self.slot_seq_addr(s) + 3 + k
    }
}

// ---------------------------------------------------------------------------
// Multi-server worker
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct MTx {
    lane: usize,
    snapshot: u64,
    rs_len: usize,
    ws_len: usize,
    rs_items: Vec<u64>,
    ws_pairs: Vec<(u64, u64)>,
    valid: bool,
    reason: AbortReason,
    cts: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum MState {
    Pop,
    PopCas {
        head: u64,
    },
    ReadEntry {
        head: u64,
    },
    /// Read the batch seq word (echoed back with the response so the client
    /// can tell a fresh outcome from a re-armed stale one).
    ReadSeq,
    ReadHdrA,
    ReadHdrB,
    Fetch,
    /// Read `next_local` → the backward-walk start.
    ReadTail,
    /// Validate tx `txi` walking down from local sequence `hi` (exclusive);
    /// `tail` is the batch's validation target, `walked` counts visited
    /// entries (ring-capacity guard).
    WalkBack {
        txi: usize,
        hi: u64,
        walked: u64,
        tail: u64,
    },
    /// Take the reservation lock.
    Lock {
        tail: u64,
    },
    /// Lock held: re-read `next_local` (revalidate the delta if it moved).
    Recheck {
        tail: u64,
    },
    /// Reserve global timestamps for the survivors (one fetch-add).
    ReserveGlobal {
        tail: u64,
    },
    /// Write the entries' item words.
    InsertItems {
        tail: u64,
        widx: usize,
    },
    /// Write cts + len words.
    InsertMeta {
        tail: u64,
    },
    /// Bump `next_local`, publish seq tags, release the lock.
    Publish {
        tail: u64,
        sub: u8,
    },
    WriteOutcomes,
    /// Echo the batch seq (after the outcomes, before the RESPONSE flip).
    WriteEcho,
    SetResponse,
    Finished,
}

/// A commit-server worker for one partition.
pub struct MultiWorker {
    /// This server's own mailbox block (status + headers + outcomes).
    proto: CommitProtocol,
    /// The device-wide payload region holding every warp's read/write-sets
    /// (shared across servers — the sets are written once by the clients).
    payload: CommitProtocol,
    ctl: ServerControl,
    atr: PartitionedAtr,
    /// Global-memory address of the shared cts counter (next cts to assign).
    global_cts_addr: u64,
    slot: usize,
    /// Seq of the batch being processed (echoed with the response).
    seq: u64,
    /// Fault-domain channel id (the partition index).
    fault_channel: u64,
    txs: Vec<MTx>,
    st: MState,
    /// Server-side observability (public for result harvesting).
    pub metrics: MetricsReport,
}

impl MultiWorker {
    /// Build a worker for a server whose control block and mailboxes are
    /// `ctl`/`proto`; `payload` addresses the shared read/write-set region.
    pub fn new(
        proto: CommitProtocol,
        payload: CommitProtocol,
        ctl: ServerControl,
        atr: PartitionedAtr,
        global_cts_addr: u64,
    ) -> Self {
        Self {
            proto,
            payload,
            ctl,
            atr,
            global_cts_addr,
            slot: 0,
            seq: 0,
            fault_channel: 0,
            txs: Vec::new(),
            st: MState::Pop,
            metrics: MetricsReport::default(),
        }
    }

    /// Set the fault-domain channel id (the partition index).
    pub fn set_fault_channel(&mut self, channel: u64) {
        self.fault_channel = channel;
    }

    fn n_valid(&self) -> u64 {
        self.txs.iter().filter(|t| t.valid).count() as u64
    }

    fn next_valid(&self, from: usize) -> Option<usize> {
        (from..self.txs.len()).find(|&i| self.txs[i].valid)
    }

    /// Start (or continue) the backward validation walk for the batch from
    /// local tail `tail`.
    fn start_walk(&mut self, tail: u64) -> MState {
        match self.next_valid(0) {
            Some(txi) => MState::WalkBack {
                txi,
                hi: tail,
                walked: 0,
                tail,
            },
            None => MState::Lock { tail },
        }
    }

    /// Next walk state after finishing (or failing) tx `txi`.
    fn after_walk(&mut self, txi: usize, tail: u64) -> MState {
        match self.next_valid(txi + 1) {
            Some(next) => MState::WalkBack {
                txi: next,
                hi: tail,
                walked: 0,
                tail,
            },
            None => MState::Lock { tail },
        }
    }
}

impl WarpProgram for MultiWorker {
    fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
        match std::mem::replace(&mut self.st, MState::Pop) {
            MState::Pop => {
                w.set_phase(Phase::ServerIdle.id());
                let ctl = &self.ctl;
                // Acquire: pairs with the receiver's tail/shutdown releases.
                let words = w.shared_read_ord(
                    0b111,
                    |l| match l {
                        0 => ctl.q_head_addr(),
                        1 => ctl.q_tail_addr(),
                        _ => ctl.shutdown_addr(),
                    },
                    MemOrder::Acquire,
                );
                let (head, tail, shutdown) = (words[0], words[1], words[2]);
                if head == tail {
                    if shutdown != 0 {
                        self.st = MState::Finished;
                        return StepOutcome::Done;
                    }
                    w.poll_wait();
                    self.st = MState::Pop;
                } else {
                    self.st = MState::PopCas { head };
                }
                StepOutcome::Running
            }
            MState::PopCas { head } => {
                w.set_phase(Phase::ServerIdle.id());
                let old = w.shared_cas1(0, self.ctl.q_head_addr(), head, head + 1);
                self.st = if old == head {
                    MState::ReadEntry { head }
                } else {
                    MState::Pop
                };
                StepOutcome::Running
            }
            MState::ReadEntry { head } => {
                w.set_phase(Phase::ServerIdle.id());
                // Acquire: pairs with the receiver's entry-release write.
                self.slot =
                    w.shared_read1_ord(0, self.ctl.q_entry_addr(head), MemOrder::Acquire) as usize;
                self.st = MState::ReadSeq;
                StepOutcome::Running
            }
            MState::ReadSeq => {
                w.set_phase(Phase::Validation.id());
                // Acquire: control-plane word, ordered against recovery
                // resends (a timed-out client may rewrite it concurrently).
                self.seq =
                    w.global_read1_ord(0, self.proto.req_seq_addr(self.slot), MemOrder::Acquire);
                self.st = MState::ReadHdrA;
                StepOutcome::Running
            }
            MState::ReadHdrA => {
                w.set_phase(Phase::Validation.id());
                let proto = &self.proto;
                let slot = self.slot;
                let hdrs = w.global_read(full_mask(), |l| proto.hdr_a_addr(slot, l));
                self.txs.clear();
                for (lane, &h) in hdrs.iter().enumerate() {
                    let (committing, snapshot) = CommitProtocol::unpack_hdr_a(h);
                    if committing {
                        self.txs.push(MTx {
                            lane,
                            snapshot,
                            rs_len: 0,
                            ws_len: 0,
                            rs_items: Vec::new(),
                            ws_pairs: Vec::new(),
                            valid: true,
                            reason: AbortReason::ReadValidation,
                            cts: 0,
                        });
                    }
                }
                self.metrics.batch_sizes.record(self.txs.len() as u64);
                self.st = MState::ReadHdrB;
                StepOutcome::Running
            }
            MState::ReadHdrB => {
                w.set_phase(Phase::Validation.id());
                let proto = &self.proto;
                let slot = self.slot;
                let hdrs = w.global_read(full_mask(), |l| proto.hdr_b_addr(slot, l));
                for tx in self.txs.iter_mut() {
                    let (rs_len, ws_len) = CommitProtocol::unpack_hdr_b(hdrs[tx.lane]);
                    tx.rs_len = rs_len;
                    tx.ws_len = ws_len;
                }
                self.st = MState::Fetch;
                StepOutcome::Running
            }
            MState::Fetch => {
                w.set_phase(Phase::Validation.id());
                // Collaborative fetch: broadcast reads, one payload word at a
                // time (same pattern as the single-server Full variant).
                let proto = self.payload.clone();
                let slot = self.slot;
                let mut sched: Vec<(usize, bool, usize)> = Vec::new();
                for (ti, tx) in self.txs.iter().enumerate() {
                    for e in 0..tx.rs_len {
                        sched.push((ti, false, e));
                    }
                    for e in 0..tx.ws_len {
                        sched.push((ti, true, e));
                    }
                }
                if !sched.is_empty() {
                    let txs = &self.txs;
                    let words = w.global_read_bulk(full_mask(), sched.len(), |_, i| {
                        let (ti, is_ws, e) = sched[i];
                        let lane = txs[ti].lane;
                        if is_ws {
                            proto.ws_addr(slot, lane, e)
                        } else {
                            proto.rs_addr(slot, lane, e)
                        }
                    });
                    for (i, &(ti, is_ws, _)) in sched.iter().enumerate() {
                        let word = words[i][0];
                        if is_ws {
                            self.txs[ti].ws_pairs.push(unpack_ws_entry(word));
                        } else {
                            self.txs[ti].rs_items.push(word);
                        }
                    }
                }
                self.st = MState::ReadTail;
                StepOutcome::Running
            }
            MState::ReadTail => {
                w.set_phase(Phase::Validation.id());
                // Acquire: pairs with the inserter's next_local release.
                let tail = w.shared_read1_ord(0, self.atr.next_local_addr(), MemOrder::Acquire);
                self.metrics
                    .atr_occupancy
                    .push(w.now(), tail.min(self.atr.capacity()));
                self.st = self.start_walk(tail);
                StepOutcome::Running
            }
            MState::WalkBack {
                txi,
                hi,
                walked,
                tail,
            } => {
                w.set_phase(Phase::Validation.id());
                // Chunk of up to 32 entries below `hi`, walking down.
                let budget = self.atr.capacity().saturating_sub(walked);
                let n = hi.min(WARP_LANES as u64).min(budget);
                if hi == 0 || n == 0 {
                    // Reached the start of the partition's history, or
                    // exhausted the ring without finding an entry at or
                    // before the snapshot (window abort).
                    if n == 0 && hi > 0 {
                        self.txs[txi].valid = false;
                        self.txs[txi].reason = AbortReason::AtrWindowOverflow;
                    }
                    self.st = self.after_walk(txi, tail);
                    return StepOutcome::Running;
                }
                let lo = hi - n;
                let mut mask: Mask = 0;
                for j in 0..n as usize {
                    mask |= 1 << j;
                }
                let atr = self.atr.clone();
                // Acquire: seq tags are the seqlock publish word; a mismatch
                // below means recycled or in-flight, both handled.
                let seqs = w.shared_read_ord(
                    mask,
                    |j| atr.slot_seq_addr(atr.slot_of(lo + j as u64)),
                    MemOrder::Acquire,
                );
                // seq tag for sequence q is q+1; anything else means the slot
                // was recycled (newer) or is still being written (older/0).
                let mut recycled = false;
                let mut in_flight = false;
                for (j, &seq) in seqs.iter().enumerate().take(n as usize) {
                    match steps::classify_tag(seq, lo + j as u64 + 1) {
                        TagState::Recycled => recycled = true,
                        TagState::InFlight => in_flight = true,
                        TagState::Published => {}
                    }
                }
                if in_flight {
                    w.poll_wait();
                    self.st = MState::WalkBack {
                        txi,
                        hi,
                        walked,
                        tail,
                    };
                    return StepOutcome::Running;
                }
                if recycled {
                    // Needed history fell out of the ring.
                    self.txs[txi].valid = false;
                    self.txs[txi].reason = AbortReason::AtrWindowOverflow;
                    self.st = self.after_walk(txi, tail);
                    return StepOutcome::Running;
                }
                // Acquire: slots may be recycled by a concurrent inserter;
                // the seq-tag check above makes that an intended race.
                let ctss = w.shared_read_ord(
                    mask,
                    |j| atr.slot_cts_addr(atr.slot_of(lo + j as u64)),
                    MemOrder::Acquire,
                );
                let lens = w.shared_read_ord(
                    mask,
                    |j| atr.slot_len_addr(atr.slot_of(lo + j as u64)),
                    MemOrder::Acquire,
                );
                let snapshot = self.txs[txi].snapshot;
                // Which entries in this chunk are newer than the snapshot?
                let relevant: Vec<usize> =
                    (0..n as usize).filter(|&j| ctss[j] > snapshot).collect();
                let mut conflict = false;
                if !relevant.is_empty() {
                    let max_len = relevant.iter().map(|&j| lens[j]).max().unwrap_or(0);
                    let mut items: Vec<Vec<u64>> = vec![Vec::new(); n as usize];
                    for k in 0..max_len {
                        let mut kmask: Mask = 0;
                        for &j in &relevant {
                            if k < lens[j] {
                                kmask |= 1 << j;
                            }
                        }
                        let row = w.shared_read_ord(
                            kmask,
                            |j| atr.slot_item_addr(atr.slot_of(lo + j as u64), k),
                            MemOrder::Acquire,
                        );
                        for &j in &relevant {
                            if k < lens[j] {
                                items[j].push(row[j]);
                            }
                        }
                    }
                    let tx = &self.txs[txi];
                    let total: u64 = relevant.iter().map(|&j| lens[j]).sum();
                    w.alu(
                        full_mask(),
                        (((tx.rs_len + tx.ws_len) as u64 * total.max(1)) / 32).max(1),
                    );
                    let entries: Vec<(u64, Vec<u64>)> = relevant
                        .iter()
                        .map(|&j| (lens[j], std::mem::take(&mut items[j])))
                        .collect();
                    conflict = steps::footprint_conflicts(
                        tx.rs_items
                            .iter()
                            .copied()
                            .chain(tx.ws_pairs.iter().map(|&(i, _)| i)),
                        &entries,
                    );
                }
                let done_walking = conflict || relevant.len() < n as usize; // hit cts ≤ snapshot
                if conflict {
                    self.txs[txi].valid = false;
                    self.txs[txi].reason = AbortReason::ReadValidation;
                }
                self.st = if done_walking {
                    self.after_walk(txi, tail)
                } else {
                    MState::WalkBack {
                        txi,
                        hi: lo,
                        walked: walked + n,
                        tail,
                    }
                };
                StepOutcome::Running
            }
            MState::Lock { tail } => {
                w.set_phase(Phase::RecordInsert.id());
                if self.n_valid() == 0 {
                    self.st = MState::WriteOutcomes;
                    return StepOutcome::Running;
                }
                let old = w.shared_cas1(0, self.atr.lock_addr(), 0, 1);
                self.st = if old == 0 {
                    MState::Recheck { tail }
                } else {
                    MState::Lock { tail }
                };
                StepOutcome::Running
            }
            MState::Recheck { tail } => {
                w.set_phase(Phase::RecordInsert.id());
                // Acquire: ordered after the lock CAS; sees the latest
                // published tail.
                let cur = w.shared_read1_ord(0, self.atr.next_local_addr(), MemOrder::Acquire);
                if cur != tail {
                    // New entries since validation: drop the lock and
                    // revalidate the delta ([tail, cur) walking back is just
                    // the full walk again — entries below tail are already
                    // proven clean, and the walk stops at cts ≤ snapshot).
                    w.shared_write1_ord(0, self.atr.lock_addr(), 0, MemOrder::Release);
                    self.st = self.start_walk(cur);
                } else {
                    self.st = MState::ReserveGlobal { tail };
                }
                StepOutcome::Running
            }
            MState::ReserveGlobal { tail } => {
                w.set_phase(Phase::RecordInsert.id());
                // The single global synchronization: one fetch-add per batch
                // on the device-memory cts counter.
                let n = self.n_valid();
                let base = w.global_atomic_add(0, self.global_cts_addr, n);
                let mut cts = base;
                for tx in self.txs.iter_mut() {
                    if tx.valid {
                        tx.cts = cts;
                        cts += 1;
                    }
                }
                self.st = MState::InsertItems { tail, widx: 0 };
                StepOutcome::Running
            }
            MState::InsertItems { tail, widx } => {
                w.set_phase(Phase::RecordInsert.id());
                let valid: Vec<(usize, &MTx)> = self
                    .txs
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.valid)
                    .collect();
                let max_ws = valid.iter().map(|(_, t)| t.ws_len).max().unwrap_or(0);
                if widx >= max_ws {
                    self.st = MState::InsertMeta { tail };
                    return StepOutcome::Running;
                }
                let mut mask: Mask = 0;
                for (k, (_, tx)) in valid.iter().enumerate() {
                    if widx < tx.ws_len {
                        mask |= 1 << k;
                    }
                }
                let atr = self.atr.clone();
                let writes: Vec<(u64, u64)> = valid
                    .iter()
                    .enumerate()
                    .map(|(k, (_, t))| {
                        (
                            atr.slot_item_addr(atr.slot_of(tail + k as u64), widx as u64),
                            t.ws_pairs.get(widx).map(|&(i, _)| i).unwrap_or(0),
                        )
                    })
                    .collect();
                // Release: recycles ring slots a validator may still probe;
                // the seq-tag re-check makes that an intended race.
                w.shared_write_ord(mask, |k| writes[k].0, |k| writes[k].1, MemOrder::Release);
                self.st = MState::InsertItems {
                    tail,
                    widx: widx + 1,
                };
                StepOutcome::Running
            }
            MState::InsertMeta { tail } => {
                w.set_phase(Phase::RecordInsert.id());
                let valid: Vec<(u64, u64)> = self
                    .txs
                    .iter()
                    .filter(|t| t.valid)
                    .map(|t| (t.cts, t.ws_len as u64))
                    .collect();
                let mut mask: Mask = 0;
                for k in 0..valid.len() {
                    mask |= 1 << k;
                }
                let atr = self.atr.clone();
                w.shared_write_ord(
                    mask,
                    |k| atr.slot_cts_addr(atr.slot_of(tail + k as u64)),
                    |k| valid[k].0,
                    MemOrder::Release,
                );
                w.shared_write_ord(
                    mask,
                    |k| atr.slot_len_addr(atr.slot_of(tail + k as u64)),
                    |k| valid[k].1,
                    MemOrder::Release,
                );
                self.st = MState::Publish { tail, sub: 0 };
                StepOutcome::Running
            }
            MState::Publish { tail, sub } => {
                w.set_phase(Phase::RecordInsert.id());
                let n = self.n_valid();
                match sub {
                    0 => {
                        // Publish the seq tags (entries become visible).
                        let mut mask: Mask = 0;
                        for k in 0..n as usize {
                            mask |= 1 << k;
                        }
                        let atr = self.atr.clone();
                        // Release: validators acquire these seq tags.
                        w.shared_write_ord(
                            mask,
                            |k| atr.slot_seq_addr(atr.slot_of(tail + k as u64)),
                            |k| tail + k as u64 + 1,
                            MemOrder::Release,
                        );
                        self.st = MState::Publish { tail, sub: 1 };
                    }
                    1 => {
                        // Release: publishes the new tail to ReadTail readers.
                        w.shared_write1_ord(
                            0,
                            self.atr.next_local_addr(),
                            tail + n,
                            MemOrder::Release,
                        );
                        self.st = MState::Publish { tail, sub: 2 };
                    }
                    _ => {
                        // Release: unlock; the next lock CAS acquires it.
                        w.shared_write1_ord(0, self.atr.lock_addr(), 0, MemOrder::Release);
                        self.st = MState::WriteOutcomes;
                    }
                }
                StepOutcome::Running
            }
            MState::WriteOutcomes => {
                w.set_phase(Phase::RecordInsert.id());
                let mut outcomes = [OUTCOME_NONE; WARP_LANES];
                for tx in &self.txs {
                    outcomes[tx.lane] = if tx.valid {
                        pack_commit(tx.cts)
                    } else {
                        pack_abort(tx.reason)
                    };
                }
                let proto = &self.proto;
                let slot = self.slot;
                w.global_write(
                    full_mask(),
                    |l| proto.outcome_addr(slot, l),
                    |l| outcomes[l],
                );
                self.st = MState::WriteEcho;
                StepOutcome::Running
            }
            MState::WriteEcho => {
                w.set_phase(Phase::RecordInsert.id());
                // The echo must land after the outcome words and before the
                // RESPONSE flip: echo == seq certifies the payload is
                // complete (see `gpu_sim::channel`).
                w.global_write1_ord(
                    0,
                    self.proto.resp_seq_addr(self.slot),
                    self.seq,
                    MemOrder::Release,
                );
                self.st = MState::SetResponse;
                StepOutcome::Running
            }
            MState::SetResponse => {
                w.set_phase(Phase::RecordInsert.id());
                let dropped = w.fault_plan().is_some_and(|p| {
                    p.drop_response(self.fault_channel, self.slot as u64, self.seq, 0)
                });
                if dropped {
                    // Response delivery lost in transit: payload and echo are
                    // in place, only the flag flip vanishes. The client's
                    // timed-out re-post lets the receiver re-arm the slot
                    // without reprocessing the batch.
                    w.global_write1_ord(
                        0,
                        self.proto.resp_seq_addr(self.slot),
                        self.seq,
                        MemOrder::Release,
                    );
                } else {
                    // Release: publishes the outcome words to the client.
                    w.global_write1_ord(
                        0,
                        self.proto.mailboxes().status_addr(self.slot),
                        STATUS_RESPONSE,
                        MemOrder::Release,
                    );
                }
                self.st = MState::Pop;
                StepOutcome::Running
            }
            MState::Finished => StepOutcome::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-server client
// ---------------------------------------------------------------------------

/// Client warp phase (multi-server variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McPhase {
    Begin,
    Bodies,
    Settle,
    PreVal {
        lane: usize,
    },
    /// Submit to the `k`-th *involved* server: sub-step 0 = hdr A,
    /// 1 = hdr B, 2 = batch seq, 3 = flag (fault-aware).
    Send {
        k: usize,
        sub: u8,
    },
    /// Deterministic wait before (re-)posting to the `k`-th involved server:
    /// an injected request delay (`resend == false`, returns to the flag
    /// sub-step) or timeout backoff (`resend == true`, goes to `Resend`).
    Backoff {
        k: usize,
        resume_at: u64,
        resend: bool,
    },
    /// Re-post the request flag to the `k`-th involved server after a
    /// response timeout (the seq word is unchanged, so the receiver treats
    /// a successfully delivered duplicate idempotently).
    Resend {
        k: usize,
    },
    /// Poll the `k`-th involved server for its response.
    Wait {
        k: usize,
    },
    /// Read the `k`-th involved server's outcomes, then clear its flag.
    Outcomes {
        k: usize,
        cleared: bool,
    },
    WriteBack {
        widx: usize,
        sub: u8,
    },
    /// Progressive GTS publication (timestamps may be non-consecutive).
    GtsPublish,
    FinishRound,
    SignalDone,
    Finished,
}

/// One multi-server CSMV client warp.
pub struct MultiClient<S: TxSource> {
    /// The shared execution engine.
    pub exec: MvExec<S>,
    heap: VBoxHeap,
    /// Per-server mailbox blocks (status + headers + outcomes).
    hdr_protos: Vec<CommitProtocol>,
    /// The shared payload region: read/write-sets are built here once during
    /// execution and read by whichever server the batch routes to.
    area: RequestSetArea,
    slot: usize,
    num_servers: usize,
    gts_addr: u64,
    done_addr: u64,
    phase: McPhase,
    /// Servers involved in the current batch.
    involved: Vec<usize>,
    lane_cts: [u64; WARP_LANES],
    lane_published: [bool; WARP_LANES],
    lane_head: [u64; WARP_LANES],
    /// Cycle at which the current GTS-publication episode began.
    gts_wait_start: Option<u64>,
    /// Failure-recovery policy (inert by default).
    recovery: RetryPolicy,
    /// Base of the per-partition heartbeat words (`None` = no liveness
    /// checking; word `base + srv` is stamped by partition `srv`'s receiver).
    hb_base: Option<u64>,
    /// Heartbeat staleness threshold before a partition is quarantined.
    hb_patience: Option<u64>,
    /// Partitions declared dead (stale heartbeat). Requests are no longer
    /// sent to them; their lanes fail with `ServerUnavailable`.
    quarantined: Vec<bool>,
    /// Next batch seq (device-unique per mailbox slot is enough; 0 = never).
    next_seq: u64,
    /// In-flight batch seq per server.
    srv_seq: Vec<u64>,
    /// Send attempts for the in-flight batch per server.
    srv_attempt: Vec<u32>,
    /// Cycle the in-flight request was last posted, per server.
    srv_sent: Vec<u64>,
    /// An injected request delay has already been served for the current
    /// flag sub-step (so re-entering it does not re-roll the delay).
    delay_served: bool,
    /// `(gts value, cycle first observed)` — how long publication has been
    /// parked on one GTS value, for the crash-hole fallback.
    gts_stuck: Option<(u64, u64)>,
}

impl<S: TxSource> MultiClient<S> {
    /// Build a client warp bound to mailbox `slot` on every server.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sources: Vec<S>,
        thread_base: usize,
        exec_cfg: MvExecConfig,
        heap: VBoxHeap,
        hdr_protos: Vec<CommitProtocol>,
        payload: &CommitProtocol,
        slot: usize,
        gts_addr: u64,
        done_addr: u64,
    ) -> Self {
        let num_servers = hdr_protos.len();
        Self {
            exec: MvExec::new(sources, thread_base, exec_cfg),
            heap,
            hdr_protos,
            area: payload.set_area(slot),
            slot,
            num_servers,
            gts_addr,
            done_addr,
            phase: McPhase::Begin,
            involved: Vec::new(),
            lane_cts: [0; WARP_LANES],
            lane_published: [false; WARP_LANES],
            lane_head: [0; WARP_LANES],
            gts_wait_start: None,
            recovery: RetryPolicy::default(),
            hb_base: None,
            hb_patience: None,
            quarantined: vec![false; num_servers],
            next_seq: 1,
            srv_seq: vec![0; num_servers],
            srv_attempt: vec![0; num_servers],
            srv_sent: vec![0; num_servers],
            delay_served: false,
            gts_stuck: None,
        }
    }

    /// Install a failure-recovery policy (timeouts, backoff, retry budget).
    pub fn set_recovery(&mut self, policy: RetryPolicy) {
        self.recovery = policy;
    }

    /// Enable partition liveness checking: heartbeat words live at
    /// `base + srv`, and a value older than `patience` cycles quarantines
    /// the partition.
    pub fn set_liveness(&mut self, base: u64, patience: u64) {
        self.hb_base = Some(base);
        self.hb_patience = Some(patience);
    }

    /// Partition of a lane's update transaction — asserts the footprint is
    /// partition-confined (the documented restriction of this prototype).
    fn lane_partition(&self, lane: usize) -> usize {
        let l = &self.exec.lanes[lane];
        // Update txs always have writes; an empty set degrades to partition 0
        // rather than panicking in the commit path.
        let part = (l.ws.first().map_or(0, |&(item, _)| item) % self.num_servers as u64) as usize;
        for &(item, _) in &l.ws {
            assert_eq!(
                (item % self.num_servers as u64) as usize,
                part,
                "multi-server CSMV requires partition-confined update transactions"
            );
        }
        for &item in &l.rs {
            assert_eq!(
                (item % self.num_servers as u64) as usize,
                part,
                "multi-server CSMV requires partition-confined update transactions"
            );
        }
        part
    }

    fn committing_mask(&self) -> u32 {
        self.exec.committing_update_mask()
    }

    /// Committing lanes belonging to server `srv`.
    fn server_mask(&self, srv: usize) -> u32 {
        let mut m = 0;
        for lane in 0..WARP_LANES {
            if self.committing_mask() & (1 << lane) != 0 && self.lane_partition(lane) == srv {
                m |= 1 << lane;
            }
        }
        m
    }

    fn committed_mask(&self) -> u32 {
        let mut m = 0;
        for (i, &cts) in self.lane_cts.iter().enumerate() {
            if cts != 0 {
                m |= 1 << i;
            }
        }
        m
    }

    fn next_broadcaster(&self, from: usize) -> Option<usize> {
        (from..WARP_LANES).find(|&l| self.committing_mask() & (1 << l) != 0)
    }

    fn after_settle(&mut self) -> McAfterSettle {
        if self.committing_mask() == 0 {
            return McAfterSettle::Begin;
        }
        if let Some(lane) = self.next_broadcaster(0) {
            return McAfterSettle::PreVal(lane);
        }
        McAfterSettle::Send
    }

    fn arm_send(&mut self, now: u64) -> McPhase {
        // Lanes routed to a dead partition fail up front: nobody will ever
        // answer, so don't even post the request.
        for srv in 0..self.num_servers {
            if self.quarantined[srv] {
                let mask = self.server_mask(srv);
                for lane in 0..WARP_LANES {
                    if mask & (1 << lane) != 0 {
                        self.exec
                            .fail_lane(lane, now, AbortReason::ServerUnavailable);
                    }
                }
            }
        }
        self.involved = (0..self.num_servers)
            .filter(|&srv| self.server_mask(srv) != 0)
            .collect();
        if self.involved.is_empty() {
            McPhase::Begin
        } else {
            McPhase::Send { k: 0, sub: 0 }
        }
    }

    /// Declare partition `srv` dead: fail its in-flight lanes and stop
    /// sending to it for the rest of the run.
    fn quarantine(&mut self, srv: usize, now: u64) {
        self.quarantined[srv] = true;
        self.exec.metrics.record_fault(FaultEvent::Quarantine, now);
        let mask = self.server_mask(srv);
        for lane in 0..WARP_LANES {
            if mask & (1 << lane) != 0 {
                self.exec
                    .fail_lane(lane, now, AbortReason::ServerUnavailable);
            }
        }
    }

    /// Next phase once the `k`-th involved server's batch has been resolved
    /// (outcome consumed, or its lanes terminally failed).
    fn after_wait(&mut self, k: usize) -> McPhase {
        if k + 1 < self.involved.len() {
            McPhase::Wait { k: k + 1 }
        } else if self.committed_mask() == 0 {
            McPhase::FinishRound
        } else {
            McPhase::WriteBack { widx: 0, sub: 0 }
        }
    }
}

enum McAfterSettle {
    Begin,
    PreVal(usize),
    Send,
}

impl<S: TxSource + 'static> WarpProgram for MultiClient<S> {
    fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
        match self.phase {
            McPhase::Begin => {
                self.lane_cts = [0; WARP_LANES];
                self.lane_published = [false; WARP_LANES];
                if self.exec.begin_round(w, self.gts_addr) {
                    self.phase = McPhase::Bodies;
                } else {
                    self.phase = McPhase::SignalDone;
                }
                StepOutcome::Running
            }
            McPhase::Bodies => {
                let heap = self.heap.clone();
                let area = self.area.clone();
                if self.exec.step_bodies(w, &heap, &area) {
                    self.phase = McPhase::Settle;
                }
                StepOutcome::Running
            }
            McPhase::Settle => {
                w.set_phase(Phase::Execution.id());
                let now = w.now();
                let mut settled = 0u64;
                for lane in 0..WARP_LANES {
                    let l = &self.exec.lanes[lane];
                    if l.logic.is_none() {
                        continue;
                    }
                    if l.overflowed() {
                        self.exec
                            .abort_lane(lane, now, AbortReason::VersionOverflow);
                        settled += 1;
                    } else if l.body_done() && l.is_rot() {
                        let snapshot = l.snapshot;
                        self.exec.commit_lane(lane, now, None, snapshot);
                        settled += 1;
                    }
                }
                w.alu(full_mask(), settled.max(1));
                self.phase = match self.after_settle() {
                    McAfterSettle::Begin => McPhase::Begin,
                    McAfterSettle::PreVal(lane) => McPhase::PreVal { lane },
                    McAfterSettle::Send => self.arm_send(now),
                };
                StepOutcome::Running
            }
            McPhase::PreVal { lane } => {
                w.set_phase(Phase::PreValidation.id());
                // Same shuffle-based exchange as the single-server client.
                let committing = self.committing_mask();
                let ws_items: Vec<u64> = self.exec.lanes[lane]
                    .ws
                    .iter()
                    .map(|&(item, _)| item)
                    .collect();
                let mut regs = [0u64; WARP_LANES];
                let mut losers: u32 = 0;
                for &item in &ws_items {
                    regs[lane] = item;
                    let got = w.shfl(committing, &regs, |_| lane);
                    for (j, &e) in got.iter().enumerate().skip(lane + 1) {
                        if committing & (1 << j) == 0 || losers & (1 << j) != 0 {
                            continue;
                        }
                        let lj = &self.exec.lanes[j];
                        if lj.rs.contains(&e) || lj.ws.iter().any(|&(it, _)| it == e) {
                            losers |= 1 << j;
                        }
                    }
                }
                w.alu(committing, (ws_items.len() as u64).max(1));
                let now = w.now();
                for j in 0..WARP_LANES {
                    if losers & (1 << j) != 0 {
                        self.exec.abort_lane(j, now, AbortReason::PreValidationKill);
                    }
                }
                self.phase = match self.next_broadcaster(lane + 1) {
                    Some(next) => McPhase::PreVal { lane: next },
                    None => {
                        if self.committing_mask() == 0 {
                            McPhase::Begin
                        } else {
                            self.arm_send(now)
                        }
                    }
                };
                StepOutcome::Running
            }
            McPhase::Send { k, sub } => {
                w.set_phase(Phase::WaitServer.id());
                let srv = self.involved[k];
                let mask = self.server_mask(srv);
                let proto = self.hdr_protos[srv].clone();
                let slot = self.slot;
                match sub {
                    0 => {
                        let lanes = &self.exec.lanes;
                        w.global_write(
                            full_mask(),
                            |l| proto.hdr_a_addr(slot, l),
                            |l| CommitProtocol::pack_hdr_a(mask & (1 << l) != 0, lanes[l].snapshot),
                        );
                        self.phase = McPhase::Send { k, sub: 1 };
                    }
                    1 => {
                        let lanes = &self.exec.lanes;
                        w.global_write(
                            full_mask(),
                            |l| proto.hdr_b_addr(slot, l),
                            |l| CommitProtocol::pack_hdr_b(lanes[l].rs.len(), lanes[l].ws.len()),
                        );
                        self.phase = McPhase::Send { k, sub: 2 };
                    }
                    2 => {
                        // Fresh batch seq for this server's slot.
                        self.srv_seq[srv] = self.next_seq;
                        self.next_seq += 1;
                        self.srv_attempt[srv] = 0;
                        self.delay_served = false;
                        // Control-plane word: ordered like the status flag
                        // (recovery resends rewrite it mid-sweep).
                        w.global_write1_ord(
                            0,
                            proto.req_seq_addr(slot),
                            self.srv_seq[srv],
                            MemOrder::Release,
                        );
                        self.phase = McPhase::Send { k, sub: 3 };
                    }
                    _ => {
                        let channel = srv as u64;
                        let seq = self.srv_seq[srv];
                        let attempt = self.srv_attempt[srv];
                        let mut delay = 0;
                        let mut dropped = false;
                        if let Some(plan) = w.fault_plan() {
                            if !self.delay_served {
                                delay = plan.request_delay(channel, slot as u64, seq, attempt);
                            }
                            dropped = plan.drop_request(channel, slot as u64, seq, attempt);
                        }
                        if delay > 0 {
                            self.delay_served = true;
                            let now = w.now();
                            self.exec
                                .metrics
                                .record_fault(FaultEvent::DelayInjected, now);
                            self.phase = McPhase::Backoff {
                                k,
                                resume_at: now + delay,
                                resend: false,
                            };
                            return StepOutcome::Running;
                        }
                        self.delay_served = false;
                        self.srv_sent[srv] = w.now();
                        if dropped {
                            // The flag flip is lost in transit: pay the memory
                            // cost but leave the mailbox status untouched (the
                            // seq rewrite is idempotent).
                            w.global_write1_ord(
                                0,
                                proto.req_seq_addr(slot),
                                seq,
                                MemOrder::Release,
                            );
                        } else {
                            // Release: publishes the headers/payload to the
                            // server.
                            w.global_write1_ord(
                                0,
                                proto.mailboxes().status_addr(slot),
                                STATUS_REQUEST,
                                MemOrder::Release,
                            );
                        }
                        self.phase = if k + 1 < self.involved.len() {
                            McPhase::Send { k: k + 1, sub: 0 }
                        } else {
                            McPhase::Wait { k: 0 }
                        };
                    }
                }
                StepOutcome::Running
            }
            McPhase::Backoff {
                k,
                resume_at,
                resend,
            } => {
                w.set_phase(Phase::WaitServer.id());
                if w.now() >= resume_at {
                    self.phase = if resend {
                        McPhase::Resend { k }
                    } else {
                        McPhase::Send { k, sub: 3 }
                    };
                } else {
                    w.poll_wait();
                }
                StepOutcome::Running
            }
            McPhase::Resend { k } => {
                w.set_phase(Phase::WaitServer.id());
                let srv = self.involved[k];
                let proto = &self.hdr_protos[srv];
                let slot = self.slot;
                let seq = self.srv_seq[srv];
                let attempt = self.srv_attempt[srv];
                self.exec.metrics.record_fault(FaultEvent::Resend, w.now());
                let dropped = w
                    .fault_plan()
                    .is_some_and(|p| p.drop_request(srv as u64, slot as u64, seq, attempt));
                self.srv_sent[srv] = w.now();
                if dropped {
                    w.global_write1_ord(0, proto.req_seq_addr(slot), seq, MemOrder::Release);
                } else {
                    // The seq word is unchanged, so a successfully delivered
                    // duplicate is suppressed by the receiver (the response is
                    // re-armed, not reprocessed).
                    w.global_write1_ord(
                        0,
                        proto.mailboxes().status_addr(slot),
                        STATUS_REQUEST,
                        MemOrder::Release,
                    );
                }
                self.phase = McPhase::Wait { k };
                StepOutcome::Running
            }
            McPhase::Wait { k } => {
                w.set_phase(Phase::WaitServer.id());
                let srv = self.involved[k];
                // Acquire: seeing RESPONSE makes the outcome words visible.
                let st = w.global_read1_ord(
                    0,
                    self.hdr_protos[srv].mailboxes().status_addr(self.slot),
                    MemOrder::Acquire,
                );
                if st == STATUS_RESPONSE {
                    // Only a matching seq echo certifies this response answers
                    // the in-flight batch; a stale echo (re-armed response for
                    // an earlier seq) falls through to the timeout logic so a
                    // re-post can reclaim the slot.
                    let echo = w.global_read1_ord(
                        0,
                        self.hdr_protos[srv].resp_seq_addr(self.slot),
                        MemOrder::Acquire,
                    );
                    if echo == self.srv_seq[srv] {
                        self.phase = McPhase::Outcomes { k, cleared: false };
                        return StepOutcome::Running;
                    }
                }
                let now = w.now();
                // Liveness: a stale heartbeat means the partition's server SM
                // died. Quarantine it — its lanes fail, the others carry on.
                if let (Some(base), Some(patience)) = (self.hb_base, self.hb_patience) {
                    let hb = w.global_read1_ord(0, base + srv as u64, MemOrder::Acquire);
                    if now.saturating_sub(hb) > patience {
                        self.quarantine(srv, now);
                        self.phase = self.after_wait(k);
                        return StepOutcome::Running;
                    }
                }
                let timed_out = self
                    .recovery
                    .resp_timeout
                    .is_some_and(|t| now.saturating_sub(self.srv_sent[srv]) > t);
                if !timed_out {
                    w.poll_wait();
                    return StepOutcome::Running;
                }
                self.exec.metrics.record_fault(FaultEvent::Timeout, now);
                self.srv_attempt[srv] += 1;
                if self.srv_attempt[srv] >= self.recovery.max_send_attempts {
                    // Terminal: this partition is unreachable for the batch.
                    let mask = self.server_mask(srv);
                    for lane in 0..WARP_LANES {
                        if mask & (1 << lane) != 0 {
                            self.exec.fail_lane(lane, now, AbortReason::ServerTimeout);
                        }
                    }
                    self.phase = self.after_wait(k);
                } else {
                    let actor = (self.slot * self.num_servers + srv) as u64;
                    let delay = self.recovery.backoff_cycles(
                        actor,
                        self.srv_seq[srv],
                        self.srv_attempt[srv],
                    );
                    self.phase = McPhase::Backoff {
                        k,
                        resume_at: now + delay,
                        resend: true,
                    };
                }
                StepOutcome::Running
            }
            McPhase::Outcomes { k, cleared } => {
                w.set_phase(Phase::WaitServer.id());
                let srv = self.involved[k];
                if !cleared {
                    let proto = &self.hdr_protos[srv];
                    let slot = self.slot;
                    let outcomes = w.global_read(full_mask(), |l| proto.outcome_addr(slot, l));
                    let now = w.now();
                    for (lane, &outcome) in outcomes.iter().enumerate() {
                        match unpack_outcome(outcome) {
                            Outcome::None => {}
                            Outcome::Abort(reason) => self.exec.abort_lane(lane, now, reason),
                            Outcome::Commit(cts) => self.lane_cts[lane] = cts,
                        }
                    }
                    self.phase = McPhase::Outcomes { k, cleared: true };
                } else {
                    let dup = w.fault_plan().is_some_and(|p| {
                        p.duplicate_request(srv as u64, self.slot as u64, self.srv_seq[srv])
                    });
                    if dup {
                        // Injected duplicate delivery: re-post the served
                        // request instead of releasing the mailbox. The
                        // receiver suppresses the stale seq and re-arms the
                        // response, which the seq-echo check above ignores.
                        self.exec
                            .metrics
                            .record_fault(FaultEvent::DuplicateInjected, w.now());
                        w.global_write1_ord(
                            0,
                            self.hdr_protos[srv].mailboxes().status_addr(self.slot),
                            STATUS_REQUEST,
                            MemOrder::Release,
                        );
                    } else {
                        // Release: hands the mailbox back for the next round.
                        w.global_write1_ord(
                            0,
                            self.hdr_protos[srv].mailboxes().status_addr(self.slot),
                            STATUS_EMPTY,
                            MemOrder::Release,
                        );
                    }
                    self.phase = self.after_wait(k);
                }
                StepOutcome::Running
            }
            McPhase::WriteBack { widx, sub } => {
                w.set_phase(Phase::WriteBack.id());
                let committed = self.committed_mask();
                let mut mask = 0u32;
                for l in 0..WARP_LANES {
                    if committed & (1 << l) != 0 && widx < self.exec.lanes[l].ws.len() {
                        mask |= 1 << l;
                    }
                }
                if mask == 0 {
                    self.phase = McPhase::GtsPublish;
                    w.alu(full_mask(), 1);
                    return StepOutcome::Running;
                }
                let heap = self.heap.clone();
                let lanes = &self.exec.lanes;
                match sub {
                    0 => {
                        // Acquire: pairs with other committers' head updates.
                        let heads = w.global_read_ord(
                            mask,
                            |l| heap.head_addr(lanes[l].ws[widx].0),
                            MemOrder::Acquire,
                        );
                        for (l, &head) in heads.iter().enumerate() {
                            if mask & (1 << l) != 0 {
                                self.lane_head[l] = head;
                            }
                        }
                        self.phase = McPhase::WriteBack { widx, sub: 1 };
                    }
                    1 => {
                        let lane_head = self.lane_head;
                        let lane_cts = self.lane_cts;
                        // Release: ring-slot overwrite is an intended race
                        // with probing readers (timestamp re-check).
                        w.global_write_ord(
                            mask,
                            |l| {
                                let (item, _) = lanes[l].ws[widx];
                                heap.version_addr(item, heap.next_slot(lane_head[l]))
                            },
                            |l| {
                                let (_, value) = lanes[l].ws[widx];
                                stm_core::vbox::pack_version(lane_cts[l], value)
                            },
                            MemOrder::Release,
                        );
                        self.phase = McPhase::WriteBack { widx, sub: 2 };
                    }
                    _ => {
                        let lane_head = self.lane_head;
                        // Release: publishes the version written above.
                        w.global_write_ord(
                            mask,
                            |l| heap.head_addr(lanes[l].ws[widx].0),
                            |l| heap.next_slot(lane_head[l]),
                            MemOrder::Release,
                        );
                        self.phase = McPhase::WriteBack {
                            widx: widx + 1,
                            sub: 0,
                        };
                    }
                }
                StepOutcome::Running
            }
            McPhase::GtsPublish => {
                w.set_phase(Phase::WaitGts.id());
                if self.gts_wait_start.is_none() {
                    self.gts_wait_start = Some(w.now());
                }
                // Progressive publication: timestamps may be non-consecutive
                // across servers, so publish each run of consecutive cts as
                // its turn comes.
                // Acquire: pairs with other warps' GTS publications.
                let gts = w.global_read1_ord(0, self.gts_addr, MemOrder::Acquire);
                // A crash-hole skip (below) may have advanced the GTS past
                // one of our timestamps; the write-back is already complete
                // (WriteBack precedes GtsPublish), so the version is visible
                // and the turn is simply done.
                for l in 0..WARP_LANES {
                    if !self.lane_published[l] && self.lane_cts[l] != 0 && self.lane_cts[l] <= gts {
                        self.lane_published[l] = true;
                    }
                }
                let pending: Vec<u64> = (0..WARP_LANES)
                    .filter(|&l| !self.lane_published[l] && self.lane_cts[l] != 0)
                    .map(|l| self.lane_cts[l])
                    .collect();
                let new_gts = steps::gts_run(gts, &pending);
                for l in 0..WARP_LANES {
                    if !self.lane_published[l]
                        && self.lane_cts[l] != 0
                        && self.lane_cts[l] <= new_gts
                    {
                        self.lane_published[l] = true;
                    }
                }
                if new_gts > gts {
                    // Release: snapshot readers must see our write-back.
                    w.global_write1_ord(0, self.gts_addr, new_gts, MemOrder::Release);
                }
                let pending =
                    (0..WARP_LANES).any(|l| self.lane_cts[l] != 0 && !self.lane_published[l]);
                if pending {
                    // Crash fallback: a cts reserved by a server that died
                    // mid-commit is never delivered to any client, leaving a
                    // permanent hole in the GTS turn order. Once a partition
                    // is known dead and the GTS has been parked long enough
                    // for any live owner to take its turn, publish *through*
                    // the hole — the lost cts has no write-back to expose, so
                    // skipping it is invisible to snapshot readers. The CAS
                    // makes a late owner win over a concurrent skipper.
                    let now = w.now();
                    let stuck_for = match self.gts_stuck {
                        Some((g, since)) if g == new_gts => now.saturating_sub(since),
                        _ => {
                            self.gts_stuck = Some((new_gts, now));
                            0
                        }
                    };
                    // A parked client may never have talked to the dead
                    // partition (its footprint lives elsewhere), so consult
                    // every heartbeat — the hole's owner was on a partition
                    // this client need not be a customer of. Flag-only: the
                    // client's own outcomes are already settled here.
                    if let (Some(base), Some(patience)) = (self.hb_base, self.hb_patience) {
                        if stuck_for > patience {
                            let mut hb_mask: Mask = 0;
                            for srv in 0..self.num_servers {
                                hb_mask |= 1 << srv;
                            }
                            let hbs =
                                w.global_read_ord(hb_mask, |l| base + l as u64, MemOrder::Acquire);
                            for (srv, &hb) in hbs.iter().enumerate().take(self.num_servers) {
                                if !self.quarantined[srv] && now.saturating_sub(hb) > patience {
                                    self.quarantined[srv] = true;
                                    self.exec.metrics.record_fault(FaultEvent::Quarantine, now);
                                }
                            }
                        }
                    }
                    let skip_after = self.hb_patience.map(|p| p.saturating_mul(4));
                    if self.quarantined.iter().any(|&q| q)
                        && skip_after.is_some_and(|s| stuck_for > s)
                    {
                        self.gts_stuck = None;
                        w.global_cas1(0, self.gts_addr, new_gts, new_gts + 1);
                    } else {
                        w.poll_wait();
                    }
                } else {
                    self.gts_stuck = None;
                    let now = w.now();
                    let started = self.gts_wait_start.take().unwrap_or(now);
                    self.exec
                        .metrics
                        .gts_stall
                        .push(now, now.saturating_sub(started));
                    self.phase = McPhase::FinishRound;
                }
                StepOutcome::Running
            }
            McPhase::FinishRound => {
                w.set_phase(Phase::Execution.id());
                let now = w.now();
                let committed = self.committed_mask();
                for lane in 0..WARP_LANES {
                    if committed & (1 << lane) != 0 {
                        let snapshot = self.exec.lanes[lane].snapshot;
                        let cts = self.lane_cts[lane];
                        self.exec.commit_lane(lane, now, Some(cts), snapshot);
                        self.lane_cts[lane] = 0;
                    }
                }
                w.alu(full_mask(), 1);
                self.phase = McPhase::Begin;
                StepOutcome::Running
            }
            McPhase::SignalDone => {
                w.set_phase(Phase::Idle.id());
                w.global_atomic_add(0, self.done_addr, 1);
                self.phase = McPhase::Finished;
                StepOutcome::Running
            }
            McPhase::Finished => StepOutcome::Done,
        }
    }
}

// ---------------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------------

/// Run a workload on multi-server CSMV. Same contract as [`crate::run`];
/// update transactions must be partition-confined (see the module docs).
/// Panics on a watchdog stall; use [`run_multi_checked`] to get the error.
pub fn run_multi<S, F>(
    cfg: &MultiCsmvConfig,
    make_source: F,
    num_items: u64,
    initial: impl FnMut(u64) -> u64,
) -> RunResult
where
    S: TxSource + 'static,
    F: FnMut(usize) -> S,
{
    run_multi_checked(cfg, make_source, num_items, initial).unwrap_or_else(|e| panic!("{e}"))
}

/// Run a workload on multi-server CSMV, converting watchdog stalls into
/// [`RunError::Stalled`] instead of hanging or panicking.
pub fn run_multi_checked<S, F>(
    cfg: &MultiCsmvConfig,
    mut make_source: F,
    num_items: u64,
    mut initial: impl FnMut(u64) -> u64,
) -> Result<RunResult, RunError>
where
    S: TxSource + 'static,
    F: FnMut(usize) -> S,
{
    assert!(cfg.num_servers >= 1);
    assert!(
        cfg.gpu.num_sms > cfg.num_servers,
        "need at least one client SM besides the {} server SMs",
        cfg.num_servers
    );
    let num_clients = cfg.num_client_warps();
    let first_server_sm = cfg.gpu.num_sms - cfg.num_servers;

    // Closure so the parallel mode's conflict fallback can rebuild the
    // identical device from scratch (see gpu_sim::run_with_mode).
    let launch = || {
        let mut dev = Device::new(cfg.gpu.clone());
        if let Some(plan) = &cfg.faults {
            dev.set_fault_plan(plan.clone());
        }
        if let Some(max_idle) = cfg.max_idle_cycles {
            dev.set_watchdog(max_idle);
        }
        let gts_addr = dev.alloc_global(1);
        let done_addr = dev.alloc_global(1);
        let global_cts_addr = dev.alloc_global(1);
        // Per-partition liveness heartbeats (word srv is stamped by
        // partition srv's receiver on every poll sweep).
        let hb_base = dev.alloc_global(cfg.num_servers);
        dev.global_mut().write(global_cts_addr, 1); // cts are 1-based
        let heap = VBoxHeap::init(
            dev.global_mut(),
            num_items,
            cfg.versions_per_box,
            &mut initial,
        );

        dev.enable_analysis(cfg.analysis);

        // Shared payload region (rs/ws) + per-server header/outcome mailboxes.
        let payload = CommitProtocol::alloc(dev.global_mut(), num_clients, cfg.max_rs, cfg.max_ws);
        let hdr_protos: Vec<CommitProtocol> = (0..cfg.num_servers)
            .map(|_| CommitProtocol::alloc(dev.global_mut(), num_clients, 1, 1))
            .collect();

        // -- servers --------------------------------------------------------
        let mut server_ids = Vec::new();
        let mut atrs = Vec::new();
        for (srv, hdr_proto) in hdr_protos.iter().enumerate() {
            let sm = first_server_sm + srv;
            let atr = PartitionedAtr::alloc(&mut dev, sm, cfg.atr_capacity, cfg.max_ws);
            atrs.push(atr.clone());
            let ctl = ServerControl::alloc(&mut dev, sm, num_clients);
            let mut receiver =
                ReceiverWarp::new(hdr_proto.clone(), ctl.clone(), num_clients, done_addr);
            receiver.set_fault_channel(srv as u64);
            if cfg.heartbeat_patience.is_some() {
                receiver.set_heartbeat(hb_base + srv as u64);
            }
            server_ids.push(dev.spawn(sm, Box::new(receiver)));
            for _ in 0..cfg.server_workers {
                let mut worker = MultiWorker::new(
                    hdr_proto.clone(),
                    payload.clone(),
                    ctl.clone(),
                    atr.clone(),
                    global_cts_addr,
                );
                worker.set_fault_channel(srv as u64);
                server_ids.push(dev.spawn(sm, Box::new(worker)));
            }
        }
        if cfg.analysis.invariants {
            // Kill/crash plans leave reserved timestamps unpublished and
            // quarantine holes, so the completeness checks only apply to
            // plans that let every warp finish.
            let expect_complete = cfg
                .faults
                .as_ref()
                .is_none_or(|p| p.spec().kills.is_empty() && p.spec().crash_sms.is_empty());
            dev.add_invariant_checker(Box::new(crate::check::MultiCsmvInvariantChecker::new(
                atrs,
                heap.clone(),
                gts_addr,
                global_cts_addr,
                first_server_sm,
                expect_complete,
            )));
        }

        // -- clients --------------------------------------------------------
        let mut client_ids = Vec::new();
        let mut thread_id = 0usize;
        let mut slot = 0usize;
        for sm in 0..first_server_sm {
            for _ in 0..cfg.warps_per_sm {
                let sources: Vec<S> = (0..WARP_LANES)
                    .map(|i| make_source(thread_id + i))
                    .collect();
                let exec_cfg = MvExecConfig {
                    record_history: cfg.record_history,
                    retry: cfg.recovery.clone(),
                    ..MvExecConfig::default()
                };
                let mut client = MultiClient::new(
                    sources,
                    thread_id,
                    exec_cfg,
                    heap.clone(),
                    hdr_protos.clone(),
                    &payload,
                    slot,
                    gts_addr,
                    done_addr,
                );
                client.set_recovery(cfg.recovery.clone());
                if let Some(patience) = cfg.heartbeat_patience {
                    client.set_liveness(hb_base, patience);
                }
                client_ids.push(dev.spawn(sm, Box::new(client)));
                thread_id += WARP_LANES;
                slot += 1;
            }
        }
        (dev, (server_ids, client_ids))
    };

    let (mut dev, (server_ids, client_ids)) = gpu_sim::run_with_mode(cfg.sim, launch);

    if let Some(info) = dev.stalled() {
        return Err(RunError::Stalled {
            cycle: info.cycle,
            live_warps: info.live_warps,
        });
    }

    let analysis = dev.finish_analysis();
    let mut result = RunResult {
        elapsed_cycles: dev.elapsed_cycles(),
        analysis,
        ..Default::default()
    };
    for id in server_ids {
        result.server_breakdown.add_warp(dev.warp_stats(id));
        match dev.take_program(id).downcast::<MultiWorker>() {
            Ok(worker) => result.metrics.merge(&worker.metrics),
            Err(prog) => {
                if let Ok(receiver) = prog.downcast::<ReceiverWarp>() {
                    result.metrics.merge(&receiver.metrics);
                }
            }
        }
    }
    for id in client_ids {
        result.client_breakdown.add_warp(dev.warp_stats(id));
        let mut client = dev
            .take_program(id)
            .downcast::<MultiClient<S>>()
            .expect("client program type");
        result.stats.merge(&client.exec.stats());
        result.metrics.merge(&client.exec.metrics);
        result.records.append(&mut client.exec.take_records());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use stm_core::{check_history, TxLogic, TxOp};

    /// A partition-confined transfer: both accounts in the same partition.
    #[derive(Clone)]
    struct PTransfer {
        from: u64,
        to: u64,
        step: u8,
        a: u64,
        b: u64,
    }
    impl TxLogic for PTransfer {
        fn is_read_only(&self) -> bool {
            false
        }
        fn reset(&mut self) {
            self.step = 0;
        }
        fn next(&mut self, last: Option<u64>) -> TxOp {
            match self.step {
                0 => {
                    self.step = 1;
                    TxOp::Read { item: self.from }
                }
                1 => {
                    self.a = last.unwrap();
                    self.step = 2;
                    TxOp::Read { item: self.to }
                }
                2 => {
                    self.b = last.unwrap();
                    self.step = 3;
                    let amt = 5.min(self.a);
                    TxOp::Write {
                        item: self.from,
                        value: self.a - amt,
                    }
                }
                3 => {
                    self.step = 4;
                    let amt = 5.min(self.a);
                    TxOp::Write {
                        item: self.to,
                        value: self.b + amt,
                    }
                }
                _ => TxOp::Finish,
            }
        }
    }

    /// A full scan (unrestricted ROT).
    #[derive(Clone)]
    struct Scan {
        items: u64,
        next: u64,
    }
    impl TxLogic for Scan {
        fn is_read_only(&self) -> bool {
            true
        }
        fn reset(&mut self) {
            self.next = 0;
        }
        fn next(&mut self, _last: Option<u64>) -> TxOp {
            if self.next < self.items {
                let item = self.next;
                self.next += 1;
                TxOp::Read { item }
            } else {
                TxOp::Finish
            }
        }
    }

    enum Mixed {
        T(PTransfer),
        S(Scan),
    }
    impl TxLogic for Mixed {
        fn is_read_only(&self) -> bool {
            matches!(self, Mixed::S(_))
        }
        fn reset(&mut self) {
            match self {
                Mixed::T(t) => t.reset(),
                Mixed::S(s) => s.reset(),
            }
        }
        fn next(&mut self, last: Option<u64>) -> TxOp {
            match self {
                Mixed::T(t) => t.next(last),
                Mixed::S(s) => s.next(last),
            }
        }
    }

    struct Src {
        txs: Vec<Mixed>,
    }
    impl TxSource for Src {
        type Tx = Mixed;
        fn next_tx(&mut self) -> Option<Mixed> {
            self.txs.pop()
        }
    }

    const ITEMS: u64 = 64;

    fn make_src(cfg: &MultiCsmvConfig, thread: usize, txs: usize) -> Src {
        let servers = cfg.num_servers as u64;
        let mut v = Vec::new();
        for i in 0..txs {
            if (thread + i).is_multiple_of(3) {
                v.push(Mixed::S(Scan {
                    items: ITEMS,
                    next: 0,
                }));
            } else {
                // Same partition: from ≡ to (mod num_servers).
                let from = ((thread as u64) * 7 + i as u64 * servers) % ITEMS;
                let to = (from + servers * 3) % ITEMS;
                let (from, to) = if from == to {
                    (from, (to + servers) % ITEMS)
                } else {
                    (from, to)
                };
                v.push(Mixed::T(PTransfer {
                    from,
                    to,
                    step: 0,
                    a: 0,
                    b: 0,
                }));
            }
        }
        Src { txs: v }
    }

    fn run_small(num_servers: usize, seed_shift: usize) -> (MultiCsmvConfig, RunResult) {
        let gpu = GpuConfig {
            num_sms: 4 + num_servers,
            ..Default::default()
        };
        let cfg = MultiCsmvConfig {
            gpu,
            num_servers,
            versions_per_box: 8,
            server_workers: 2,
            ..Default::default()
        };
        let txs = 3;
        let res = run_multi(
            &cfg,
            |t| make_src(&cfg, t + seed_shift, txs),
            ITEMS,
            |_| 100,
        );
        (cfg, res)
    }

    #[test]
    fn multi_server_runs_race_free_and_invariant_clean() {
        let gpu = GpuConfig {
            num_sms: 6,
            ..Default::default()
        };
        let cfg = MultiCsmvConfig {
            gpu,
            num_servers: 2,
            versions_per_box: 8,
            server_workers: 2,
            analysis: AnalysisConfig {
                races: true,
                invariants: true,
            },
            ..Default::default()
        };
        let res = run_multi(&cfg, |t| make_src(&cfg, t, 3), ITEMS, |_| 100);
        let report = res.analysis.expect("analysis was enabled");
        assert!(report.events > 0);
        assert_eq!(report.race_count, 0, "races: {:?}", report.races);
        assert_eq!(
            report.violation_count(),
            0,
            "violations: {:?}",
            report.violations
        );
    }

    /// Message faults force resends and duplicate filtering, but the commit
    /// protocol's invariants (and the end-of-run completeness checks — no
    /// warp dies, so the run is complete) must still hold.
    #[test]
    fn multi_server_invariant_clean_under_message_faults() {
        use gpu_sim::{FaultPlan, FaultSpec};
        use stm_core::RetryPolicy;
        let gpu = GpuConfig {
            num_sms: 6,
            ..Default::default()
        };
        let cfg = MultiCsmvConfig {
            gpu,
            num_servers: 2,
            versions_per_box: 8,
            server_workers: 2,
            analysis: AnalysisConfig {
                races: false,
                invariants: true,
            },
            faults: Some(FaultPlan::new(
                0xFA117,
                FaultSpec {
                    drop_req: 0.2,
                    drop_resp: 0.2,
                    dup_req: 0.1,
                    ..FaultSpec::default()
                },
            )),
            recovery: RetryPolicy {
                resp_timeout: Some(10_000),
                max_send_attempts: 16,
                backoff_base: 64,
                backoff_cap: 4096,
                jitter_seed: 0x5EED,
                ..Default::default()
            },
            ..Default::default()
        };
        let res = run_multi(&cfg, |t| make_src(&cfg, t, 3), ITEMS, |_| 100);
        let report = res.analysis.expect("analysis was enabled");
        assert!(report.events > 0);
        assert_eq!(
            report.violation_count(),
            0,
            "violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn multi_server_history_is_opaque() {
        for servers in [1, 2, 4] {
            let (cfg, res) = run_small(servers, 0);
            assert_eq!(
                res.stats.commits(),
                (cfg.num_threads() * 3) as u64,
                "{servers} servers"
            );
            let initial: HashMap<u64, u64> = (0..ITEMS).map(|i| (i, 100)).collect();
            check_history(&res.records, &initial, true)
                .unwrap_or_else(|e| panic!("{servers} servers: {e}"));
            // Money conserved.
            let mut heap = initial;
            let mut updates: Vec<_> = res.records.iter().filter(|r| r.cts.is_some()).collect();
            updates.sort_by_key(|r| r.cts.unwrap());
            for (i, r) in updates.iter().enumerate() {
                assert_eq!(r.cts.unwrap(), i as u64 + 1, "global cts must be dense");
            }
            for r in updates {
                for &(item, value) in &r.writes {
                    heap.insert(item, value);
                }
            }
            assert_eq!(heap.values().sum::<u64>(), ITEMS * 100);
        }
    }

    #[test]
    fn multi_server_is_deterministic() {
        let a = run_small(2, 1).1;
        let b = run_small(2, 1).1;
        assert_eq!(a.elapsed_cycles, b.elapsed_cycles);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn multi_server_message_faults_preserve_correctness() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let spec: FaultSpec = "drop_req=0.2,drop_resp=0.2,dup_req=0.1,delay_req=0.3x200"
            .parse()
            .unwrap();
        let cfg = MultiCsmvConfig {
            gpu: GpuConfig {
                num_sms: 6,
                ..Default::default()
            },
            num_servers: 2,
            versions_per_box: 8,
            server_workers: 2,
            faults: Some(FaultPlan::new(0xFA02, spec)),
            recovery: RetryPolicy {
                resp_timeout: Some(20_000),
                max_send_attempts: 16,
                backoff_base: 64,
                backoff_cap: 4096,
                jitter_seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let txs = 3;
        let res = run_multi_checked(&cfg, |t| make_src(&cfg, t, txs), ITEMS, |_| 100)
            .expect("recovery must keep the run live");
        let total = (cfg.num_threads() * txs) as u64;
        assert_eq!(
            res.stats.commits() + res.stats.failed,
            total,
            "every transaction must commit or fail terminally"
        );
        assert!(
            res.metrics.faults.total() > 0,
            "the plan must actually inject faults: {:?}",
            res.metrics.faults
        );
        let initial: HashMap<u64, u64> = (0..ITEMS).map(|i| (i, 100)).collect();
        check_history(&res.records, &initial, true).expect("opaque history");
    }

    #[test]
    fn crashed_server_leaves_surviving_partitions_committing() {
        use gpu_sim::{FaultPlan, FaultSpec};
        let mk_cfg = |faults: Option<FaultPlan>| MultiCsmvConfig {
            gpu: GpuConfig {
                num_sms: 6,
                ..Default::default()
            },
            num_servers: 2,
            versions_per_box: 8,
            server_workers: 2,
            // Generous timeout/attempts: terminal give-up on a *live* server
            // would abandon a batch the server may still process (see
            // DESIGN.md §11); the dead partition is handled by the heartbeat
            // quarantine, which fires long before the retry budget runs out.
            recovery: RetryPolicy {
                resp_timeout: Some(20_000),
                max_send_attempts: 16,
                backoff_base: 64,
                backoff_cap: 2048,
                jitter_seed: 3,
                ..Default::default()
            },
            heartbeat_patience: Some(25_000),
            max_idle_cycles: Some(400_000),
            faults,
            ..Default::default()
        };
        // Probe the healthy run length, then kill partition 1's server SM a
        // third of the way in (SM 5 = last of 6; servers run on SMs 4 and 5).
        let txs = 6;
        let healthy_cfg = mk_cfg(None);
        let healthy = run_multi_checked(
            &healthy_cfg,
            |t| make_src(&healthy_cfg, t, txs),
            ITEMS,
            |_| 100,
        )
        .expect("healthy run");
        let crash_at = (healthy.elapsed_cycles / 3).max(1);
        let spec: FaultSpec = format!("crash_sm=5@{crash_at}").parse().unwrap();
        let cfg = mk_cfg(Some(FaultPlan::new(0xC0A5, spec)));
        let res = run_multi_checked(&cfg, |t| make_src(&cfg, t, txs), ITEMS, |_| 100)
            .expect("survivors must drain the run, not hang");
        let total = (cfg.num_threads() * txs) as u64;
        assert_eq!(
            res.stats.commits() + res.stats.failed,
            total,
            "every transaction must commit or fail terminally"
        );
        assert!(
            res.stats.commits() > 0,
            "surviving partitions must keep committing"
        );
        assert!(
            res.stats.failed > 0,
            "the dead partition's transactions must fail"
        );
        assert!(
            res.metrics.faults.count(FaultEvent::Quarantine) > 0,
            "clients must quarantine the dead partition: {:?}",
            res.metrics.faults
        );
        assert!(
            res.metrics.aborts.count(AbortReason::ServerUnavailable) > 0,
            "failed transactions must be attributed to the dead server"
        );
        // Committed transactions stay opaque even with the crash mid-run.
        let initial: HashMap<u64, u64> = (0..ITEMS).map(|i| (i, 100)).collect();
        check_history(&res.records, &initial, true).expect("opaque history for survivors");
    }

    #[test]
    #[should_panic(expected = "partition-confined")]
    fn cross_partition_updates_are_rejected() {
        let gpu = GpuConfig {
            num_sms: 3,
            ..Default::default()
        };
        let cfg = MultiCsmvConfig {
            gpu,
            num_servers: 2,
            ..Default::default()
        };
        // from and to in different partitions (64 is even, offset 1).
        let _ = run_multi(
            &cfg,
            |_| Src {
                txs: vec![Mixed::T(PTransfer {
                    from: 0,
                    to: 1,
                    step: 0,
                    a: 0,
                    b: 0,
                })],
            },
            ITEMS,
            |_| 100,
        );
    }
}
