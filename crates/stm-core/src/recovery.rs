//! Client-side failure-recovery policy shared by the STM implementations:
//! response timeouts, bounded exponential backoff with seeded jitter, and
//! per-transaction retry budgets.
//!
//! The defaults are deliberately inert — no timeout, unlimited retries, no
//! backoff — so a healthy (fault-free) run behaves exactly as before. The
//! benchmark harness arms the policy when fault injection is requested.

use gpu_sim::seeded_jitter;

/// How a client reacts to lost responses and repeated aborts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Cycles to wait for a server response before re-posting the request
    /// (same batch sequence number). `None` disables timeouts entirely.
    pub resp_timeout: Option<u64>,
    /// Send attempts per batch before the client gives up and fails the
    /// batch's transactions with `AbortReason::ServerTimeout`.
    pub max_send_attempts: u32,
    /// Aborted attempts per transaction before it is failed terminally with
    /// `AbortReason::RetryBudgetExhausted`. `None` = retry forever.
    pub retry_budget: Option<u32>,
    /// Base backoff delay in cycles; doubled per attempt. 0 disables
    /// backoff.
    pub backoff_base: u64,
    /// Upper bound on the exponential backoff delay, in cycles.
    pub backoff_cap: u64,
    /// Seed for the deterministic jitter added on top of the exponential
    /// delay (bounded by the current delay). 0 disables jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            resp_timeout: None,
            max_send_attempts: 16,
            retry_budget: None,
            backoff_base: 0,
            backoff_cap: 1 << 14,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (1-based: the first *re*-try) of
    /// operation `seq` on actor `actor`: `min(base · 2^(attempt-1), cap)`
    /// plus seeded jitter in `[0, delay]`. Deterministic in all arguments.
    pub fn backoff_cycles(&self, actor: u64, seq: u64, attempt: u32) -> u64 {
        if self.backoff_base == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self.backoff_base.saturating_mul(1u64 << shift);
        let delay = exp.min(self.backoff_cap.max(self.backoff_base));
        let jitter = if self.jitter_seed == 0 {
            0
        } else {
            seeded_jitter(self.jitter_seed, actor, seq, attempt, delay)
        };
        delay + jitter
    }

    /// True when a transaction that has already burned `attempts` aborted
    /// attempts must not be retried again.
    pub fn budget_exhausted(&self, attempts: u32) -> bool {
        self.retry_budget.is_some_and(|b| attempts >= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inert() {
        let p = RetryPolicy::default();
        assert_eq!(p.resp_timeout, None);
        assert!(!p.budget_exhausted(u32::MAX));
        assert_eq!(p.backoff_cycles(0, 0, 5), 0);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            backoff_base: 100,
            backoff_cap: 400,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_cycles(1, 1, 1), 100);
        assert_eq!(p.backoff_cycles(1, 1, 2), 200);
        assert_eq!(p.backoff_cycles(1, 1, 3), 400);
        assert_eq!(p.backoff_cycles(1, 1, 9), 400); // capped
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            backoff_base: 64,
            backoff_cap: 1024,
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        for attempt in 1..6 {
            let a = p.backoff_cycles(3, 11, attempt);
            let b = p.backoff_cycles(3, 11, attempt);
            assert_eq!(a, b);
            let base = RetryPolicy {
                jitter_seed: 0,
                ..p.clone()
            }
            .backoff_cycles(3, 11, attempt);
            assert!(a >= base && a <= 2 * base);
        }
    }

    #[test]
    fn budget_counts_attempts() {
        let p = RetryPolicy {
            retry_budget: Some(3),
            ..RetryPolicy::default()
        };
        assert!(!p.budget_exhausted(2));
        assert!(p.budget_exhausted(3));
        assert!(p.budget_exhausted(4));
    }
}
