//! Reader-snapshot registration: the active-reader epoch table behind the
//! version-GC watermark and the long-reader starvation-freedom path.
//!
//! A reader that wants its snapshot protected from version reclamation
//! publishes it in a [`SnapshotRegistry`] slot *before* executing, and
//! clears the slot when the attempt resolves. The garbage collector (the
//! native store's ring-recycle path) computes a **watermark** — the
//! minimum over all registered snapshots, clamped by the GTS — and only
//! reclaims versions that no snapshot at or above the watermark can ever
//! need.
//!
//! The registration/scan race is benign by construction: a writer that
//! scanned the table *before* a reader's `register` became visible may
//! reclaim a version that reader needed, costing it one retriable abort
//! (`SnapshotTooOld`). On the retry the registration is already visible
//! (the slot store and the writer's scan are both `SeqCst`), so a reader
//! that *pins* its snapshot — re-registering the same timestamp across
//! attempts — is guaranteed the versions it needs survive, which is what
//! makes long read-only transactions starvation-free: they never validate,
//! so a retained snapshot is all they need to commit.

use std::sync::atomic::{AtomicU64, Ordering};

/// Slot sentinel: no snapshot registered.
const FREE: u64 = u64::MAX;

/// A fixed-capacity table of registered reader snapshots.
///
/// Lock-free: each slot is one `AtomicU64` (`u64::MAX` = free), claimed by
/// CAS and released by a plain store. Capacity bounds how many readers can
/// be protected at once — and therefore bounds the extra versions the GC
/// must retain, which is what keeps the store's memory footprint bounded.
#[derive(Debug)]
pub struct SnapshotRegistry {
    slots: Vec<AtomicU64>,
}

impl SnapshotRegistry {
    /// A registry with `slots` reader slots (0 is allowed: registration
    /// always fails and the watermark is always the GTS).
    pub fn new(slots: usize) -> Self {
        Self {
            slots: (0..slots).map(|_| AtomicU64::new(FREE)).collect(),
        }
    }

    /// Number of reader slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publish `snapshot` in a free slot. Returns the slot index to pass
    /// to [`SnapshotRegistry::deregister`], or `None` when the table is
    /// full (the reader runs unprotected, exactly as before this module
    /// existed). `snapshot` must not be `u64::MAX`.
    pub fn register(&self, snapshot: u64) -> Option<usize> {
        debug_assert_ne!(snapshot, FREE, "u64::MAX is the free-slot sentinel");
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(FREE, snapshot, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Replace the snapshot in a held slot (a pinned reader re-arming the
    /// same timestamp, or a round advancing its snapshot without a
    /// release/re-claim window during which the slot could be lost).
    pub fn update(&self, slot: usize, snapshot: u64) {
        debug_assert_ne!(snapshot, FREE, "u64::MAX is the free-slot sentinel");
        self.slots[slot].store(snapshot, Ordering::SeqCst);
    }

    /// Release a slot claimed by [`SnapshotRegistry::register`].
    pub fn deregister(&self, slot: usize) {
        self.slots[slot].store(FREE, Ordering::SeqCst);
    }

    /// All currently registered snapshots, in slot order. A point-in-time
    /// scan — registrations landing after the scan are missed, costing
    /// that reader at most one spurious retriable abort (see the module
    /// docs).
    pub fn registered(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&s| s != FREE)
            .collect()
    }

    /// The smallest registered snapshot, or `None` when the table is empty.
    pub fn min_registered(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&s| s != FREE)
            .min()
    }

    /// The GC watermark: the minimum over registered snapshots, clamped to
    /// `gts` so an in-flight registration of a future timestamp can never
    /// raise it above the committed frontier. Versions strictly older than
    /// the newest version at-or-below the watermark are reclaimable.
    pub fn watermark(&self, gts: u64) -> u64 {
        match self.min_registered() {
            Some(min) => min.min(gts),
            None => gts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_watermark_is_gts() {
        let r = SnapshotRegistry::new(4);
        assert_eq!(r.min_registered(), None);
        assert_eq!(r.watermark(17), 17);
    }

    #[test]
    fn register_lowers_the_watermark_until_deregister() {
        let r = SnapshotRegistry::new(4);
        let a = r.register(10).expect("slot free");
        let b = r.register(5).expect("slot free");
        assert_eq!(r.min_registered(), Some(5));
        assert_eq!(r.watermark(20), 5);
        r.deregister(b);
        assert_eq!(r.watermark(20), 10);
        r.deregister(a);
        assert_eq!(r.watermark(20), 20);
    }

    #[test]
    fn watermark_is_clamped_by_gts() {
        let r = SnapshotRegistry::new(2);
        r.register(100).expect("slot free");
        assert_eq!(r.watermark(7), 7);
    }

    #[test]
    fn full_registry_rejects_and_zero_capacity_always_rejects() {
        let r = SnapshotRegistry::new(1);
        let slot = r.register(3).expect("slot free");
        assert_eq!(r.register(4), None);
        r.deregister(slot);
        assert!(r.register(4).is_some());
        let z = SnapshotRegistry::new(0);
        assert_eq!(z.register(1), None);
        assert_eq!(z.watermark(9), 9);
    }

    #[test]
    fn update_moves_a_held_slot_without_releasing_it() {
        let r = SnapshotRegistry::new(1);
        let slot = r.register(10).expect("slot free");
        r.update(slot, 6);
        assert_eq!(r.min_registered(), Some(6));
        assert_eq!(r.register(2), None, "update must not free the slot");
        r.deregister(slot);
    }

    #[test]
    fn registration_is_visible_across_threads() {
        use std::sync::Arc;
        let r = Arc::new(SnapshotRegistry::new(8));
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let slot = r.register(i).expect("8 slots for 4 threads");
                    let w = r.watermark(100);
                    assert!(w <= i, "own registration bounds the watermark");
                    r.deregister(slot);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(r.min_registered(), None);
    }
}
