//! The result of one STM run: everything the benchmark harness and the test
//! oracles need.

use crate::history::TxRecord;
use crate::metrics::MetricsReport;
use crate::stats::{CommitStats, TimeBreakdown};
use gpu_sim::AnalysisReport;

/// Outcome of running a workload to completion on one STM.
#[derive(Debug, Default)]
pub struct RunResult {
    /// Aggregated commit/abort counters.
    pub stats: CommitStats,
    /// Per-phase cycle breakdown over all client warps.
    pub client_breakdown: TimeBreakdown,
    /// Per-phase cycle breakdown over server warps (client–server STMs only).
    pub server_breakdown: TimeBreakdown,
    /// Simulated duration of the launch, in cycles.
    pub elapsed_cycles: u64,
    /// Committed-transaction records (empty when history recording is off).
    pub records: Vec<TxRecord>,
    /// Race/invariant findings, when the run enabled the analysis layer.
    pub analysis: Option<AnalysisReport>,
    /// Structured observability: abort reasons, latency histograms and
    /// protocol time series (empty for wall-clock-measured systems).
    pub metrics: MetricsReport,
}

impl RunResult {
    /// Throughput in transactions per second at a given device clock.
    pub fn throughput(&self, clock_ghz: f64) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let secs = self.elapsed_cycles as f64 / (clock_ghz * 1e9);
        self.stats.commits() as f64 / secs
    }

    /// Abort rate in percent.
    pub fn abort_rate_pct(&self) -> f64 {
        self.stats.abort_rate_pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_scales_with_clock_and_cycles() {
        let mut r = RunResult::default();
        r.stats.update_commits = 1_000;
        r.elapsed_cycles = 1_580_000_000; // 1 s at 1.58 GHz
        assert!((r.throughput(1.58) - 1_000.0).abs() < 1e-6);
        assert!((r.throughput(3.16) - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_cycles_gives_zero_throughput() {
        assert_eq!(RunResult::default().throughput(1.58), 0.0);
    }
}
