//! Structured per-run observability: an abort-reason taxonomy, latency
//! histograms in simulated cycles, and protocol time series (ATR occupancy,
//! GTS-stall episodes, server batch sizes).
//!
//! Every STM implementation fills a [`MetricsReport`] while it runs and the
//! launcher merges the per-warp reports into [`crate::RunResult::metrics`],
//! the same way PR 1 threaded `AnalysisReport`. The bench harness flattens
//! the report into the canonical JSON schema consumed by `bench-gate`.

/// Why a transaction attempt aborted. The taxonomy follows the paper's
/// discussion of CSMV's abort sources plus the baselines' lock conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbortReason {
    /// Commit-time read-set validation found a conflicting committed writer.
    ReadValidation = 0,
    /// Write-write conflict: a versioned lock was held, sealed or stolen
    /// (single-versioned baselines only).
    WriteWrite = 1,
    /// The transaction's snapshot fell out of the ATR ring's window before
    /// it could be validated (slot recycled / walk budget exhausted).
    AtrWindowOverflow = 2,
    /// Intra-warp pre-validation killed this lane in favour of a warp-mate
    /// writing the same item (CSMV clients only).
    PreValidationKill = 3,
    /// The commit server's request queue was full when the request arrived.
    ServerQueueFull = 4,
    /// Version-list overflow: the snapshot was older than the oldest
    /// retained version of a box read during execution.
    VersionOverflow = 5,
    /// The commit server did not answer within the client's send-attempt
    /// budget (request/response lost and retries exhausted, or the server
    /// is dead); the transaction is failed cleanly rather than retried.
    ServerTimeout = 6,
    /// The per-transaction protocol retry budget was exhausted: the
    /// transaction kept aborting for retriable reasons and gave up.
    RetryBudgetExhausted = 7,
    /// The transaction's partition is served by a quarantined (crashed)
    /// server; it fails cleanly while other partitions keep committing.
    ServerUnavailable = 8,
    /// The server recognised the request as a duplicate of an
    /// already-processed batch and dropped it instead of re-committing.
    DuplicateDropped = 9,
    /// The transaction's snapshot fell below the version-GC watermark: the
    /// version it needed was reclaimed because no *registered* reader held
    /// a snapshot that old. Retriable — a fresh attempt takes a current
    /// snapshot (and may register/pin it, see `stm_core::gc`).
    SnapshotTooOld = 10,
}

impl AbortReason {
    /// All reasons, in id order.
    pub const ALL: [AbortReason; 11] = [
        AbortReason::ReadValidation,
        AbortReason::WriteWrite,
        AbortReason::AtrWindowOverflow,
        AbortReason::PreValidationKill,
        AbortReason::ServerQueueFull,
        AbortReason::VersionOverflow,
        AbortReason::ServerTimeout,
        AbortReason::RetryBudgetExhausted,
        AbortReason::ServerUnavailable,
        AbortReason::DuplicateDropped,
        AbortReason::SnapshotTooOld,
    ];

    /// Dense id, usable as an array index and as a wire code.
    #[inline]
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`AbortReason::id`].
    pub const fn from_id(id: u8) -> Option<AbortReason> {
        match id {
            0 => Some(AbortReason::ReadValidation),
            1 => Some(AbortReason::WriteWrite),
            2 => Some(AbortReason::AtrWindowOverflow),
            3 => Some(AbortReason::PreValidationKill),
            4 => Some(AbortReason::ServerQueueFull),
            5 => Some(AbortReason::VersionOverflow),
            6 => Some(AbortReason::ServerTimeout),
            7 => Some(AbortReason::RetryBudgetExhausted),
            8 => Some(AbortReason::ServerUnavailable),
            9 => Some(AbortReason::DuplicateDropped),
            10 => Some(AbortReason::SnapshotTooOld),
            _ => None,
        }
    }

    /// True for reasons that terminate the transaction instead of sending
    /// it around the retry loop again (failure-recovery outcomes).
    pub const fn is_terminal(self) -> bool {
        matches!(
            self,
            AbortReason::ServerTimeout
                | AbortReason::RetryBudgetExhausted
                | AbortReason::ServerUnavailable
        )
    }

    /// Stable snake_case key used in the JSON schema.
    pub const fn key(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read_validation",
            AbortReason::WriteWrite => "write_write",
            AbortReason::AtrWindowOverflow => "atr_window_overflow",
            AbortReason::PreValidationKill => "prevalidation_kill",
            AbortReason::ServerQueueFull => "server_queue_full",
            AbortReason::VersionOverflow => "version_overflow",
            AbortReason::ServerTimeout => "server_timeout",
            AbortReason::RetryBudgetExhausted => "retry_budget_exhausted",
            AbortReason::ServerUnavailable => "server_unavailable",
            AbortReason::DuplicateDropped => "duplicate_dropped",
            AbortReason::SnapshotTooOld => "snapshot_too_old",
        }
    }
}

/// Classes of fault-injection / recovery events observed during a run.
/// Counted in [`FaultCounts`] and time-stamped in
/// [`MetricsReport::fault_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultEvent {
    /// A client's wait for a server response timed out.
    Timeout = 0,
    /// A client re-posted a request after a timeout (same batch seq).
    Resend = 1,
    /// The fault plan made a client deliver a completed request again.
    DuplicateInjected = 2,
    /// A server recognised and suppressed a duplicate batch.
    DuplicateSuppressed = 3,
    /// The fault plan delayed a request send.
    DelayInjected = 4,
    /// A client declared a server dead (stale heartbeat) and quarantined
    /// its partition.
    Quarantine = 5,
}

impl FaultEvent {
    /// All events, in id order.
    pub const ALL: [FaultEvent; 6] = [
        FaultEvent::Timeout,
        FaultEvent::Resend,
        FaultEvent::DuplicateInjected,
        FaultEvent::DuplicateSuppressed,
        FaultEvent::DelayInjected,
        FaultEvent::Quarantine,
    ];

    /// Dense id, usable as an array index and a series value.
    #[inline]
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Stable snake_case key used in the JSON schema.
    pub const fn key(self) -> &'static str {
        match self {
            FaultEvent::Timeout => "timeouts",
            FaultEvent::Resend => "resends",
            FaultEvent::DuplicateInjected => "duplicates_injected",
            FaultEvent::DuplicateSuppressed => "duplicates_suppressed",
            FaultEvent::DelayInjected => "delays_injected",
            FaultEvent::Quarantine => "quarantines",
        }
    }
}

/// Fault/recovery event counters, one per [`FaultEvent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    counts: [u64; FaultEvent::ALL.len()],
}

impl FaultCounts {
    /// Record one event.
    #[inline]
    pub fn record(&mut self, event: FaultEvent) {
        self.counts[event.id() as usize] += 1;
    }

    /// Events of one class.
    #[inline]
    pub fn count(&self, event: FaultEvent) -> u64 {
        self.counts[event.id() as usize]
    }

    /// Total events across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulate another counter set.
    pub fn merge(&mut self, other: &FaultCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Abort counters, one per [`AbortReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortCounts {
    counts: [u64; AbortReason::ALL.len()],
}

impl AbortCounts {
    /// Record one abort.
    #[inline]
    pub fn record(&mut self, reason: AbortReason) {
        self.counts[reason.id() as usize] += 1;
    }

    /// Aborts attributed to one reason.
    #[inline]
    pub fn count(&self, reason: AbortReason) -> u64 {
        self.counts[reason.id() as usize]
    }

    /// Total aborts across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulate another counter set.
    pub fn merge(&mut self, other: &AbortCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

/// Version-GC and memory-footprint counters (filled by backends with a
/// watermark-gated multi-version store; zero elsewhere). Reported as the
/// `gc.*` / `max_version_list_len` rows in the bench JSON schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Ring slots recycled in place: the overwritten version was already
    /// below the reader watermark, so no registered snapshot could need it.
    pub versions_reclaimed: u64,
    /// Versions spilled to an item's overflow list instead of being
    /// reclaimed, because a registered reader's snapshot still needed them.
    pub versions_spilled: u64,
    /// Spilled versions pruned later, once the watermark passed them.
    pub spill_pruned: u64,
    /// Read-only transactions that committed while holding a pinned
    /// snapshot (the starvation-freedom escalation path).
    pub pinned_commits: u64,
    /// Largest per-item version-list length (ring + live spill entries)
    /// observed at any sample point.
    pub max_version_list_len: u64,
}

impl GcStats {
    /// Accumulate another counter set. Counters add; the list-length
    /// high-water mark takes the max.
    pub fn merge(&mut self, other: &GcStats) {
        self.versions_reclaimed += other.versions_reclaimed;
        self.versions_spilled += other.versions_spilled;
        self.spill_pruned += other.spill_pruned;
        self.pinned_commits += other.pinned_commits;
        self.max_version_list_len = self.max_version_list_len.max(other.max_version_list_len);
    }
}

/// A power-of-two-bucket histogram of `u64` samples (cycle counts). Bucket
/// `i` holds samples whose value has bit-length `i`, i.e. values in
/// `[2^(i-1), 2^i)` (bucket 0 holds the value 0). Exact min/max/sum are kept
/// alongside so means are not quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the inclusive upper bound of the bucket containing
    /// the `q`-quantile sample (`q` in `[0, 1]`). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 holds only 0),
                // clamped to the exact max so outliers don't over-report.
                let ub = if i == 0 { 0 } else { (1u64 << i.min(63)) - 1 };
                return ub.min(self.max);
            }
        }
        self.max
    }

    /// Accumulate another histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One time-series sample: a value observed at a simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time of the observation, in cycles.
    pub cycle: u64,
    /// Observed value (meaning depends on the series).
    pub value: u64,
}

/// A bounded time series of [`Sample`]s. Samples beyond
/// [`Series::MAX_SAMPLES`] are counted but dropped, so pathological runs
/// cannot balloon the report; `merge` re-sorts by cycle (then value) to keep
/// the aggregate deterministic regardless of harvest order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    samples: Vec<Sample>,
    dropped: u64,
}

impl Series {
    /// Retention cap per series.
    pub const MAX_SAMPLES: usize = 1 << 16;

    /// Record one observation.
    pub fn push(&mut self, cycle: u64, value: u64) {
        if self.samples.len() < Self::MAX_SAMPLES {
            self.samples.push(Sample { cycle, value });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained samples, sorted by cycle after a `merge`.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Observations recorded, including dropped ones.
    pub fn len(&self) -> u64 {
        self.samples.len() as u64 + self.dropped
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean of the retained samples' values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|s| s.value).sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Largest retained value (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().map(|s| s.value).max().unwrap_or(0)
    }

    /// Sum of the retained samples' values.
    pub fn sum(&self) -> u64 {
        self.samples.iter().map(|s| s.value).sum()
    }

    /// Append another series, keeping cycle order and the retention cap.
    pub fn merge(&mut self, other: &Series) {
        self.dropped += other.dropped;
        for s in &other.samples {
            if self.samples.len() < Self::MAX_SAMPLES {
                self.samples.push(*s);
            } else {
                self.dropped += 1;
            }
        }
        self.samples.sort_by_key(|s| (s.cycle, s.value));
    }
}

/// Commit-pipeline counters (filled by backends that overlap speculative
/// execution with verdict/GTS waits; zero elsewhere). Reported as the
/// `pipeline.*` rows in the bench JSON schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Transactions executed speculatively while a submitted batch was
    /// still awaiting its verdicts or its GTS turn.
    pub spec_executed: u64,
    /// Speculative executions squashed by the client-side speculative
    /// pre-validation against the just-published batch's write-set.
    pub spec_squashed: u64,
    /// Speculative executions that survived squashing and were carried
    /// into the next submitted batch.
    pub spec_submitted: u64,
}

impl PipelineStats {
    /// Accumulate another counter set.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.spec_executed += other.spec_executed;
        self.spec_squashed += other.spec_squashed;
        self.spec_submitted += other.spec_submitted;
    }
}

/// The per-run observability report. All counters are in simulated cycles /
/// simulated events; wall-clock-measured systems (the CPU baseline) leave
/// the report empty.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Aborts by reason.
    pub aborts: AbortCounts,
    /// Attempt-start → commit latency of committed attempts, in cycles.
    pub commit_latency: Histogram,
    /// Attempt-start → abort latency of aborted attempts, in cycles.
    pub abort_latency: Histogram,
    /// Commit-server validation batch sizes (requests per batch); empty for
    /// serverless STMs.
    pub batch_sizes: Histogram,
    /// ATR ring occupancy (live records in the window) sampled when a
    /// committer reserves timestamps; empty for STMs without an ATR.
    pub atr_occupancy: Series,
    /// GTS turn-taking stall episodes: one sample per wait, `value` = cycles
    /// spent waiting for the publication turn.
    pub gts_stall: Series,
    /// Server-side ATR entry-wait stall episodes: one sample per blocking
    /// wait on an in-flight (reserved but unpublished) entry, `value` =
    /// cycles spent waiting. Empty for STMs without a commit server.
    pub server_stall: Series,
    /// Commit-pipeline counters; all zero on unpipelined backends.
    pub pipeline: PipelineStats,
    /// Injected-fault and recovery event counters; all zero on fault-free
    /// runs.
    pub faults: FaultCounts,
    /// Time series of fault/recovery events: one sample per event, `value` =
    /// the [`FaultEvent`] id. Empty on fault-free runs.
    pub fault_events: Series,
    /// Version-GC counters; all zero on backends without a watermark-gated
    /// store.
    pub gc: GcStats,
    /// Multi-version store memory footprint samples, `value` = bytes of
    /// live version storage (ring words + spill entries). Empty on
    /// backends that do not sample it.
    pub footprint: Series,
}

impl MetricsReport {
    /// Record an abort with its latency.
    pub fn record_abort(&mut self, reason: AbortReason, latency_cycles: u64) {
        self.aborts.record(reason);
        self.abort_latency.record(latency_cycles);
    }

    /// Record a fault/recovery event at a cycle.
    pub fn record_fault(&mut self, event: FaultEvent, cycle: u64) {
        self.faults.record(event);
        self.fault_events.push(cycle, event.id() as u64);
    }

    /// Record a commit latency.
    pub fn record_commit(&mut self, latency_cycles: u64) {
        self.commit_latency.record(latency_cycles);
    }

    /// Accumulate another warp's report.
    pub fn merge(&mut self, other: &MetricsReport) {
        self.aborts.merge(&other.aborts);
        self.commit_latency.merge(&other.commit_latency);
        self.abort_latency.merge(&other.abort_latency);
        self.batch_sizes.merge(&other.batch_sizes);
        self.atr_occupancy.merge(&other.atr_occupancy);
        self.gts_stall.merge(&other.gts_stall);
        self.server_stall.merge(&other.server_stall);
        self.pipeline.merge(&other.pipeline);
        self.faults.merge(&other.faults);
        self.fault_events.merge(&other.fault_events);
        self.gc.merge(&other.gc);
        self.footprint.merge(&other.footprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_ids_are_dense_and_round_trip() {
        for (i, r) in AbortReason::ALL.iter().enumerate() {
            assert_eq!(r.id() as usize, i);
            assert_eq!(AbortReason::from_id(r.id()), Some(*r));
        }
        assert_eq!(AbortReason::from_id(AbortReason::ALL.len() as u8), None);
    }

    #[test]
    fn reason_keys_are_distinct() {
        let mut keys: Vec<_> = AbortReason::ALL.iter().map(|r| r.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), AbortReason::ALL.len());
    }

    #[test]
    fn abort_counts_accumulate_and_merge() {
        let mut a = AbortCounts::default();
        a.record(AbortReason::ReadValidation);
        a.record(AbortReason::ReadValidation);
        a.record(AbortReason::VersionOverflow);
        let mut b = AbortCounts::default();
        b.record(AbortReason::WriteWrite);
        a.merge(&b);
        assert_eq!(a.count(AbortReason::ReadValidation), 2);
        assert_eq!(a.count(AbortReason::WriteWrite), 1);
        assert_eq!(a.count(AbortReason::VersionOverflow), 1);
        assert_eq!(a.count(AbortReason::ServerQueueFull), 0);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn fault_event_ids_are_dense_and_keys_distinct() {
        for (i, e) in FaultEvent::ALL.iter().enumerate() {
            assert_eq!(e.id() as usize, i);
        }
        let mut keys: Vec<_> = FaultEvent::ALL.iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), FaultEvent::ALL.len());
    }

    #[test]
    fn fault_counts_record_and_merge_through_reports() {
        let mut a = MetricsReport::default();
        a.record_fault(FaultEvent::Timeout, 100);
        a.record_fault(FaultEvent::Resend, 150);
        let mut b = MetricsReport::default();
        b.record_fault(FaultEvent::Resend, 50);
        a.merge(&b);
        assert_eq!(a.faults.count(FaultEvent::Timeout), 1);
        assert_eq!(a.faults.count(FaultEvent::Resend), 2);
        assert_eq!(a.faults.total(), 3);
        assert_eq!(a.fault_events.len(), 3);
        // Merge re-sorts by cycle.
        let cycles: Vec<u64> = a.fault_events.samples().iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![50, 100, 150]);
    }

    #[test]
    fn terminal_reasons_are_exactly_the_recovery_outcomes() {
        let terminal: Vec<_> = AbortReason::ALL
            .iter()
            .copied()
            .filter(|r| r.is_terminal())
            .collect();
        assert_eq!(
            terminal,
            vec![
                AbortReason::ServerTimeout,
                AbortReason::RetryBudgetExhausted,
                AbortReason::ServerUnavailable,
            ]
        );
    }

    #[test]
    fn snapshot_too_old_is_retriable() {
        assert!(!AbortReason::SnapshotTooOld.is_terminal());
        assert_eq!(AbortReason::SnapshotTooOld.key(), "snapshot_too_old");
        assert_eq!(
            AbortReason::from_id(AbortReason::SnapshotTooOld.id()),
            Some(AbortReason::SnapshotTooOld)
        );
    }

    #[test]
    fn gc_stats_merge_adds_counters_and_maxes_list_len() {
        let mut a = GcStats {
            versions_reclaimed: 5,
            versions_spilled: 2,
            spill_pruned: 1,
            pinned_commits: 1,
            max_version_list_len: 8,
        };
        let b = GcStats {
            versions_reclaimed: 3,
            versions_spilled: 4,
            spill_pruned: 2,
            pinned_commits: 0,
            max_version_list_len: 12,
        };
        a.merge(&b);
        assert_eq!(a.versions_reclaimed, 8);
        assert_eq!(a.versions_spilled, 6);
        assert_eq!(a.spill_pruned, 3);
        assert_eq!(a.pinned_commits, 1);
        assert_eq!(a.max_version_list_len, 12);
    }

    #[test]
    fn report_merge_covers_gc_and_footprint() {
        let mut a = MetricsReport::default();
        a.gc.versions_reclaimed = 2;
        a.footprint.push(10, 100);
        let mut b = MetricsReport::default();
        b.gc.versions_reclaimed = 3;
        b.gc.max_version_list_len = 7;
        b.footprint.push(5, 200);
        a.merge(&b);
        assert_eq!(a.gc.versions_reclaimed, 5);
        assert_eq!(a.gc.max_version_list_len, 7);
        assert_eq!(a.footprint.len(), 2);
        assert_eq!(a.footprint.max(), 200);
    }

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantile_bounds_the_right_bucket() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 16)
        }
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), 15);
        // p100 lands in the outlier's bucket, clamped to the exact max.
        assert_eq!(h.quantile(1.0), 1 << 20);
        let mut lo = Histogram::default();
        lo.record(0);
        lo.record(1);
        assert_eq!(lo.quantile(0.25), 0);
        assert_eq!(lo.quantile(1.0), 1);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut c = Histogram::default();
        for v in [5, 7, 9] {
            a.record(v);
            c.record(v);
        }
        for v in [100, 200] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn series_merge_sorts_by_cycle_and_caps() {
        let mut a = Series::default();
        a.push(10, 1);
        a.push(30, 3);
        let mut b = Series::default();
        b.push(20, 2);
        a.merge(&b);
        let cycles: Vec<u64> = a.samples().iter().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![10, 20, 30]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.sum(), 6);
        assert_eq!(a.max(), 3);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn series_drops_beyond_cap_but_keeps_count() {
        let mut s = Series::default();
        for i in 0..(Series::MAX_SAMPLES as u64 + 10) {
            s.push(i, 1);
        }
        assert_eq!(s.samples().len(), Series::MAX_SAMPLES);
        assert_eq!(s.len(), Series::MAX_SAMPLES as u64 + 10);
    }

    #[test]
    fn report_records_and_merges() {
        let mut a = MetricsReport::default();
        a.record_commit(100);
        a.record_abort(AbortReason::PreValidationKill, 40);
        let mut b = MetricsReport::default();
        b.record_commit(200);
        b.batch_sizes.record(8);
        b.atr_occupancy.push(50, 3);
        b.gts_stall.push(60, 12);
        b.server_stall.push(70, 9);
        a.merge(&b);
        assert_eq!(a.commit_latency.count(), 2);
        assert_eq!(a.abort_latency.count(), 1);
        assert_eq!(a.aborts.count(AbortReason::PreValidationKill), 1);
        assert_eq!(a.batch_sizes.count(), 1);
        assert_eq!(a.atr_occupancy.len(), 1);
        assert_eq!(a.gts_stall.len(), 1);
        assert_eq!(a.server_stall.len(), 1);
        assert_eq!(a.server_stall.sum(), 9);
    }

    #[test]
    fn pipeline_stats_merge_adds_counters() {
        let mut a = MetricsReport::default();
        a.pipeline.spec_executed = 10;
        a.pipeline.spec_squashed = 2;
        a.pipeline.spec_submitted = 8;
        let mut b = MetricsReport::default();
        b.pipeline.spec_executed = 5;
        b.pipeline.spec_squashed = 1;
        b.pipeline.spec_submitted = 4;
        a.merge(&b);
        assert_eq!(a.pipeline.spec_executed, 15);
        assert_eq!(a.pipeline.spec_squashed, 3);
        assert_eq!(a.pipeline.spec_submitted, 12);
    }
}
