//! Commit/abort statistics and per-phase time breakdowns — the raw material
//! for Figures 2–4 and Tables I–IV.

use gpu_sim::WarpStats;

use crate::phase::Phase;

/// Per-thread (or aggregated) transaction outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Committed update transactions.
    pub update_commits: u64,
    /// Committed read-only transactions.
    pub rot_commits: u64,
    /// Aborted attempts of update transactions.
    pub update_aborts: u64,
    /// Aborted attempts of read-only transactions (only possible in
    /// single-versioned STMs or on version-overflow in MV STMs).
    pub rot_aborts: u64,
    /// Cycles spent in attempts that ended in an abort ("wasted time").
    pub wasted_cycles: u64,
    /// Cycles spent in attempts that committed ("useful time").
    pub useful_cycles: u64,
    /// Transactions terminally failed by the recovery layer (server
    /// timeout, retry budget exhausted, server unavailable); these never
    /// commit. Zero on fault-free runs.
    pub failed: u64,
}

impl CommitStats {
    /// Total committed transactions.
    pub fn commits(&self) -> u64 {
        self.update_commits + self.rot_commits
    }

    /// Total aborted attempts.
    pub fn aborts(&self) -> u64 {
        self.update_aborts + self.rot_aborts
    }

    /// Abort rate in percent: aborted attempts over all attempts.
    pub fn abort_rate_pct(&self) -> f64 {
        let attempts = self.commits() + self.aborts();
        if attempts == 0 {
            0.0
        } else {
            100.0 * self.aborts() as f64 / attempts as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &CommitStats) {
        self.update_commits += other.update_commits;
        self.rot_commits += other.rot_commits;
        self.update_aborts += other.update_aborts;
        self.rot_aborts += other.rot_aborts;
        self.wasted_cycles += other.wasted_cycles;
        self.useful_cycles += other.useful_cycles;
        self.failed += other.failed;
    }

    /// Average total execution time per committed transaction, in cycles
    /// (useful + wasted, averaged over commits) — the "Total" column of
    /// Tables II/IV.
    pub fn total_cycles_per_tx(&self) -> f64 {
        if self.commits() == 0 {
            0.0
        } else {
            (self.useful_cycles + self.wasted_cycles) as f64 / self.commits() as f64
        }
    }

    /// Average wasted time per committed transaction, in cycles — the
    /// "Wasted" column of Tables II/IV.
    pub fn wasted_cycles_per_tx(&self) -> f64 {
        if self.commits() == 0 {
            0.0
        } else {
            self.wasted_cycles as f64 / self.commits() as f64
        }
    }
}

/// Cycles attributed to each named phase, summed over a set of warps.
/// This is the row format of the paper's Tables I and III.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Cycles per phase, indexed by `Phase::id()`.
    pub cycles: [u64; Phase::ALL.len()],
    /// Divergence cycles (idle-lane time) across all phases.
    pub divergence_cycles: u64,
    /// Divergence attributed per phase.
    pub divergence: [u64; Phase::ALL.len()],
    /// Busy-wait cycles (mailbox polling, GTS turn-taking, lock backoff),
    /// summed over all phases.
    pub poll_stall_cycles: u64,
}

impl TimeBreakdown {
    /// Accumulate one warp's counters.
    pub fn add_warp(&mut self, stats: &WarpStats) {
        for p in Phase::ALL {
            self.cycles[p.id() as usize] += stats.phase(p.id());
            self.divergence[p.id() as usize] += stats.divergence_by_phase[p.id() as usize];
        }
        self.divergence_cycles += stats.divergence_cycles;
        self.poll_stall_cycles += stats.poll_stall_cycles;
    }

    /// Cycles attributed to `phase`.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.cycles[phase.id() as usize]
    }

    /// The paper's commit phases (Tables I/III).
    pub const COMMIT_PHASES: [Phase; 6] = [
        Phase::PreValidation,
        Phase::WaitServer,
        Phase::Validation,
        Phase::RecordInsert,
        Phase::WriteBack,
        Phase::WaitGts,
    ];

    /// Divergence accrued inside the commit phases — the "Divergence" column
    /// of the paper's Tables I/III (execution-phase divergence, e.g. lanes
    /// finishing transaction bodies at different times, is excluded as in
    /// the paper).
    pub fn commit_divergence(&self) -> u64 {
        Self::COMMIT_PHASES
            .iter()
            .map(|p| self.divergence[p.id() as usize])
            .sum()
    }

    /// Sum of the *commit-related* phases (what the paper's Tables I/III call
    /// "Total"): pre-validation, wait-server, validation, record insert,
    /// write-back, wait-GTS, plus commit-phase divergence. (Phase cycles and
    /// divergence are disjoint accountings of the same instructions: phase
    /// cycles are what the active lanes spent, divergence is the idle-lane
    /// share on top.)
    pub fn commit_total(&self) -> u64 {
        Self::COMMIT_PHASES
            .iter()
            .map(|p| self.phase(*p))
            .sum::<u64>()
            + self.commit_divergence()
    }

    /// Merge another breakdown.
    pub fn merge(&mut self, other: &TimeBreakdown) {
        for (a, b) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *a += b;
        }
        for (a, b) in self.divergence.iter_mut().zip(other.divergence.iter()) {
            *a += b;
        }
        self.divergence_cycles += other.divergence_cycles;
        self.poll_stall_cycles += other.poll_stall_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate_counts_all_attempts() {
        let s = CommitStats {
            update_commits: 60,
            rot_commits: 20,
            update_aborts: 15,
            rot_aborts: 5,
            wasted_cycles: 100,
            useful_cycles: 900,
            ..Default::default()
        };
        assert_eq!(s.commits(), 80);
        assert_eq!(s.aborts(), 20);
        assert!((s.abort_rate_pct() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn abort_rate_of_empty_stats_is_zero() {
        assert_eq!(CommitStats::default().abort_rate_pct(), 0.0);
        assert_eq!(CommitStats::default().total_cycles_per_tx(), 0.0);
    }

    #[test]
    fn per_tx_times_average_over_commits() {
        let s = CommitStats {
            update_commits: 10,
            rot_commits: 0,
            update_aborts: 5,
            rot_aborts: 0,
            wasted_cycles: 50,
            useful_cycles: 950,
            ..Default::default()
        };
        assert!((s.total_cycles_per_tx() - 100.0).abs() < 1e-12);
        assert!((s.wasted_cycles_per_tx() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CommitStats {
            update_commits: 1,
            ..Default::default()
        };
        let b = CommitStats {
            update_commits: 2,
            rot_aborts: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.update_commits, 3);
        assert_eq!(a.rot_aborts, 3);
    }

    #[test]
    fn breakdown_accumulates_warp_phases() {
        let mut ws = WarpStats::default();
        ws.cycles_by_phase[Phase::Validation.id() as usize] = 40;
        ws.cycles_by_phase[Phase::WriteBack.id() as usize] = 2;
        ws.divergence_cycles = 8;
        ws.divergence_by_phase[Phase::Validation.id() as usize] = 8;
        ws.poll_stall_cycles = 3;
        let mut bd = TimeBreakdown::default();
        bd.add_warp(&ws);
        bd.add_warp(&ws);
        assert_eq!(bd.phase(Phase::Validation), 80);
        assert_eq!(bd.phase(Phase::WriteBack), 4);
        assert_eq!(bd.divergence_cycles, 16);
        assert_eq!(bd.poll_stall_cycles, 6);
        assert_eq!(bd.commit_divergence(), 16);
        assert_eq!(bd.commit_total(), 80 + 4 + 16);
    }
}
