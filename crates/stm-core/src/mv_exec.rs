//! The warp-level execution engine shared by the multi-version GPU STMs
//! (CSMV and JVSTM-GPU): drives one [`TxLogic`] per lane against a
//! [`VBoxHeap`], one warp-wide memory operation per simulator step.
//!
//! Responsibilities:
//!
//! * snapshot acquisition (a warp-wide read of the GTS at round start);
//! * the versioned read protocol (head read, backwards ring probe), with
//!   lanes at different probe depths executing under shrinking masks so
//!   divergence is accounted realistically;
//! * read-your-own-writes via the lane-local write buffer;
//! * read-set / write-set tracking for update transactions, with each
//!   append *written to a global-memory set area* (JVSTM keeps the sets in
//!   thread-local = off-chip memory; CSMV builds the commit-request payload
//!   in place during execution);
//! * version-ring overflow ("snapshot too old") detection;
//! * commit/abort bookkeeping: wasted vs useful cycles and the
//!   [`TxRecord`]s consumed by the history checker.
//!
//! What it deliberately does **not** do is commit anything: the two STMs
//! plug their very different commit protocols in around it.

use gpu_sim::{Mask, MemOrder, WarpCtx, WARP_LANES};

use crate::history::TxRecord;
use crate::logic::{TxLogic, TxOp, TxSource};
use crate::metrics::{AbortReason, MetricsReport};
use crate::phase::Phase;
use crate::recovery::RetryPolicy;
use crate::stats::CommitStats;
use crate::vbox::{unpack_version, VBoxHeap, EMPTY_TS};

/// Where a lane's read-set / write-set entries live in global memory.
///
/// Layouts are item-major (`idx` varies slowest) so that lanes appending
/// their `idx`-th entry together produce a coalesced access.
pub trait SetArea {
    /// Address of read-set entry `idx` of lane-slot `lane`.
    fn rs_addr(&self, lane: usize, idx: usize) -> u64;
    /// Address of write-set entry `idx` of lane-slot `lane`.
    fn ws_addr(&self, lane: usize, idx: usize) -> u64;
    /// Read-set capacity per lane.
    fn max_rs(&self) -> usize;
    /// Write-set capacity per lane.
    fn max_ws(&self) -> usize;
}

/// A simple item-major set area for STMs that only need thread-local sets.
#[derive(Debug, Clone)]
pub struct PlainSetArea {
    rs_base: u64,
    ws_base: u64,
    max_rs: usize,
    max_ws: usize,
}

impl PlainSetArea {
    /// Allocate an area for one warp (32 lanes).
    pub fn alloc(global: &mut gpu_sim::mem::GlobalMemory, max_rs: usize, max_ws: usize) -> Self {
        let rs_base = global.alloc(max_rs * WARP_LANES);
        let ws_base = global.alloc(max_ws * WARP_LANES);
        Self {
            rs_base,
            ws_base,
            max_rs,
            max_ws,
        }
    }
}

impl SetArea for PlainSetArea {
    fn rs_addr(&self, lane: usize, idx: usize) -> u64 {
        debug_assert!(idx < self.max_rs);
        self.rs_base + (idx * WARP_LANES + lane) as u64
    }
    fn ws_addr(&self, lane: usize, idx: usize) -> u64 {
        debug_assert!(idx < self.max_ws);
        self.ws_base + (idx * WARP_LANES + lane) as u64
    }
    fn max_rs(&self) -> usize {
        self.max_rs
    }
    fn max_ws(&self) -> usize {
        self.max_ws
    }
}

/// Pack a write-set entry `(item, value)` into one word (both 32-bit).
#[inline]
pub fn pack_ws_entry(item: u64, value: u64) -> u64 {
    debug_assert!(item <= u32::MAX as u64 && value <= u32::MAX as u64);
    (item << 32) | value
}

/// Unpack a write-set entry word.
#[inline]
pub fn unpack_ws_entry(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xFFFF_FFFF)
}

/// Micro-state of one lane's body execution.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Micro {
    /// No transaction (source exhausted, or not yet begun).
    Idle,
    /// Ready to ask the logic for its next operation.
    NeedNext(Option<u64>),
    /// Waiting to read the head word of `item`.
    WantHead { item: u64 },
    /// Probing the version ring of `item`, `back` slots behind `head`.
    Probe { item: u64, head: u64, back: u64 },
    /// A read was accepted; the read-set append for `item` is pending.
    AppendRs { item: u64, value: u64 },
    /// A write was buffered; the write-set area store is pending.
    AppendWs {
        ws_idx: usize,
        item: u64,
        value: u64,
    },
    /// Body finished; ready for the STM's commit protocol.
    BodyDone,
    /// The version ring held no old-enough version: forced abort.
    Overflow,
}

/// One lane: its transaction stream plus per-attempt state.
pub struct Lane<S: TxSource> {
    /// The lane's transaction source.
    pub source: S,
    /// Global thread id (for records/diagnostics).
    pub thread_id: usize,
    /// The in-flight transaction body, if any.
    pub logic: Option<S::Tx>,
    micro: Micro,
    /// Snapshot timestamp of the current attempt.
    pub snapshot: u64,
    /// Read-set items of the current attempt (update transactions only).
    pub rs: Vec<u64>,
    /// Write-set `(item, value)` of the current attempt.
    pub ws: Vec<(u64, u64)>,
    /// Every read `(item, value)` of the current attempt (history oracle).
    pub reads_log: Vec<(u64, u64)>,
    /// Cycle at which the current attempt started.
    pub attempt_start: u64,
    /// Outcome counters.
    pub stats: CommitStats,
    /// Committed-transaction records for the history checker.
    pub records: Vec<TxRecord>,
    /// True while an aborted transaction awaits re-execution.
    pub retry_pending: bool,
    /// Aborted attempts of the current transaction (0 on a fresh one);
    /// checked against the retry budget before re-arming a retry.
    pub attempts: u32,
}

impl<S: TxSource> Lane<S> {
    fn new(source: S, thread_id: usize) -> Self {
        Self {
            source,
            thread_id,
            logic: None,
            micro: Micro::Idle,
            snapshot: 0,
            rs: Vec::new(),
            ws: Vec::new(),
            reads_log: Vec::new(),
            attempt_start: 0,
            stats: CommitStats::default(),
            records: Vec::new(),
            retry_pending: false,
            attempts: 0,
        }
    }

    /// True once the source is exhausted and nothing is in flight.
    pub fn finished(&self) -> bool {
        self.logic.is_none() && !self.retry_pending
    }

    /// Whether the in-flight transaction is read-only.
    pub fn is_rot(&self) -> bool {
        self.logic
            .as_ref()
            .map(|l| l.is_read_only())
            .unwrap_or(false)
    }

    /// Whether the body completed (and how).
    pub fn body_done(&self) -> bool {
        self.micro == Micro::BodyDone
    }

    /// Whether the lane aborted on version-ring overflow.
    pub fn overflowed(&self) -> bool {
        self.micro == Micro::Overflow
    }

    /// Whether the lane is running a body right now.
    pub fn executing(&self) -> bool {
        !matches!(self.micro, Micro::Idle | Micro::BodyDone | Micro::Overflow)
    }
}

/// Configuration of the execution engine.
#[derive(Debug, Clone)]
pub struct MvExecConfig {
    /// Record per-transaction reads/writes for the history checker.
    /// Disable for large benchmark runs.
    pub record_history: bool,
    /// Upper bound on pure-logic operations folded into one step.
    pub max_logic_ops_per_step: usize,
    /// Failure-recovery policy; the retry budget is enforced here (a lane
    /// whose transaction exceeds it is failed terminally at round start),
    /// timeouts/backoff are enforced by the owning kernel.
    pub retry: RetryPolicy,
}

impl Default for MvExecConfig {
    fn default() -> Self {
        Self {
            record_history: true,
            max_logic_ops_per_step: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// The warp execution engine: 32 lanes plus round bookkeeping.
pub struct MvExec<S: TxSource> {
    /// The lanes (fixed 32; lanes beyond the spawned thread count are Idle
    /// with empty sources).
    pub lanes: Vec<Lane<S>>,
    /// Per-warp observability: abort reasons and commit/abort latencies are
    /// recorded here; the owning kernel adds its protocol series on top.
    pub metrics: MetricsReport,
    cfg: MvExecConfig,
}

impl<S: TxSource> MvExec<S> {
    /// Build an engine from per-lane sources. `sources.len()` must be ≤ 32;
    /// `thread_base` is the global id of lane 0.
    pub fn new(sources: Vec<S>, thread_base: usize, cfg: MvExecConfig) -> Self {
        assert!(sources.len() <= WARP_LANES);
        let lanes = sources
            .into_iter()
            .enumerate()
            .map(|(i, s)| Lane::new(s, thread_base + i))
            .collect();
        Self {
            lanes,
            metrics: MetricsReport::default(),
            cfg,
        }
    }

    /// The armed failure-recovery policy (owning kernels consult it for the
    /// backoff delays that the engine itself does not schedule).
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.cfg.retry
    }

    /// Mask of lanes currently holding a transaction in any state.
    pub fn active_mask(&self) -> Mask {
        let mut m = 0;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.logic.is_some() {
                m |= 1 << i;
            }
        }
        m
    }

    /// Mask of lanes whose body completed and which are update transactions.
    pub fn committing_update_mask(&self) -> Mask {
        let mut m = 0;
        for (i, lane) in self.lanes.iter().enumerate() {
            if lane.body_done() && !lane.is_rot() {
                m |= 1 << i;
            }
        }
        m
    }

    /// Begin a round: lanes without an in-flight transaction fetch the next
    /// one (or re-arm a retry); every lane with a transaction then reads the
    /// GTS to establish its snapshot (one coalesced warp access). Returns
    /// `false` when every lane is permanently finished.
    pub fn begin_round(&mut self, w: &mut WarpCtx, gts_addr: u64) -> bool {
        w.set_phase(Phase::Execution.id());
        // Enforce the per-transaction retry budget: a lane whose transaction
        // already burned its budget is failed terminally instead of retried.
        let now0 = w.now();
        for i in 0..self.lanes.len() {
            let give_up = {
                let l = &self.lanes[i];
                l.retry_pending && self.cfg.retry.budget_exhausted(l.attempts)
            };
            if give_up {
                self.fail_lane(i, now0, AbortReason::RetryBudgetExhausted);
            }
        }
        let mut any = false;
        for lane in self.lanes.iter_mut() {
            if lane.logic.is_none() && !lane.retry_pending {
                if let Some(tx) = lane.source.next_tx() {
                    lane.logic = Some(tx);
                    lane.attempts = 0;
                }
            }
            if lane.retry_pending {
                lane.retry_pending = false;
                if let Some(l) = lane.logic.as_mut() {
                    l.reset();
                }
            }
            if lane.logic.is_some() {
                any = true;
                lane.rs.clear();
                lane.ws.clear();
                lane.reads_log.clear();
                lane.micro = Micro::NeedNext(None);
            } else {
                lane.micro = Micro::Idle;
            }
        }
        if !any {
            return false;
        }
        let mask = self.active_mask();
        // Acquire: the snapshot read synchronizes with the committer's GTS
        // publication, making all version writes at or below it visible.
        let gts = w.global_read_ord(mask, |_| gts_addr, MemOrder::Acquire);
        let now = w.now();
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if lane.logic.is_some() {
                lane.snapshot = gts[i];
                lane.attempt_start = now;
            }
        }
        true
    }

    /// Execute one step of the bodies. Returns `true` once every active lane
    /// reached `BodyDone` or `Overflow`.
    pub fn step_bodies(&mut self, w: &mut WarpCtx, heap: &VBoxHeap, area: &dyn SetArea) -> bool {
        w.set_phase(Phase::Execution.id());

        // -- 1. pure-logic advance: consume ops that need no memory ---------
        let mut alu_ops = 0u64;
        let mut alu_mask: Mask = 0;
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let mut iters = 0;
            while let Micro::NeedNext(last) = lane.micro.clone() {
                if iters >= self.cfg.max_logic_ops_per_step {
                    break;
                }
                iters += 1;
                alu_ops += 1;
                alu_mask |= 1 << i;
                let logic = lane.logic.as_mut().expect("NeedNext without logic");
                match logic.next(last) {
                    TxOp::Read { item } => {
                        // Read-your-own-writes from the lane-local buffer.
                        // Such reads are not recorded in the history log:
                        // they observe the transaction's private state, not
                        // committed state, so the oracle has nothing to
                        // check them against (a body may overwrite the same
                        // item repeatedly).
                        if let Some(&(_, v)) = lane.ws.iter().find(|&&(it, _)| it == item) {
                            lane.micro = Micro::NeedNext(Some(v));
                        } else {
                            lane.micro = Micro::WantHead { item };
                        }
                    }
                    TxOp::Write { item, value } => {
                        assert!(
                            !logic.is_read_only(),
                            "read-only transaction attempted a write"
                        );
                        // Upsert the local buffer; the area store lands at the
                        // entry's (possibly existing) index.
                        let idx = match lane.ws.iter().position(|&(it, _)| it == item) {
                            Some(idx) => {
                                lane.ws[idx] = (item, value);
                                idx
                            }
                            None => {
                                lane.ws.push((item, value));
                                lane.ws.len() - 1
                            }
                        };
                        assert!(
                            idx < area.max_ws(),
                            "write-set overflow: lane {} exceeded {} entries",
                            i,
                            area.max_ws()
                        );
                        lane.micro = Micro::AppendWs {
                            ws_idx: idx,
                            item,
                            value,
                        };
                    }
                    TxOp::Finish => {
                        lane.micro = Micro::BodyDone;
                    }
                }
            }
        }
        if alu_ops > 0 {
            w.alu(alu_mask, alu_ops);
        }

        // -- 2. one warp-wide memory operation, picked by priority ----------
        let ws_mask = self.mask_of(|m| matches!(m, Micro::AppendWs { .. }));
        if ws_mask != 0 {
            let lanes = &self.lanes;
            w.global_write(
                ws_mask,
                |l| match &lanes[l].micro {
                    Micro::AppendWs { ws_idx, .. } => area.ws_addr(l, *ws_idx),
                    _ => unreachable!(),
                },
                |l| match &lanes[l].micro {
                    Micro::AppendWs { item, value, .. } => pack_ws_entry(*item, *value),
                    _ => unreachable!(),
                },
            );
            for lane in self.lanes.iter_mut() {
                if matches!(lane.micro, Micro::AppendWs { .. }) {
                    lane.micro = Micro::NeedNext(None);
                }
            }
            return false;
        }

        let head_mask = self.mask_of(|m| matches!(m, Micro::WantHead { .. }));
        if head_mask != 0 {
            let lanes = &self.lanes;
            // Acquire: head words are published by committers' release
            // writes; version probes ride the same edge.
            let heads = w.global_read_ord(
                head_mask,
                |l| match &lanes[l].micro {
                    Micro::WantHead { item } => heap.head_addr(*item),
                    _ => unreachable!(),
                },
                MemOrder::Acquire,
            );
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if let Micro::WantHead { item } = lane.micro {
                    lane.micro = Micro::Probe {
                        item,
                        head: heads[i],
                        back: 0,
                    };
                }
            }
            return false;
        }

        let probe_mask = self.mask_of(|m| matches!(m, Micro::Probe { .. }));
        if probe_mask != 0 {
            let nv = heap.versions_per_box();
            let lanes = &self.lanes;
            // Acquire: a probe may race a committer recycling the oldest
            // ring slot; the timestamp-check-and-retry makes that benign,
            // and the annotation declares the pair intentional.
            let words = w.global_read_ord(
                probe_mask,
                |l| match &lanes[l].micro {
                    Micro::Probe { item, head, back } => {
                        heap.version_addr(*item, (head + nv - back) % nv)
                    }
                    _ => unreachable!(),
                },
                MemOrder::Acquire,
            );
            let record = self.cfg.record_history;
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if let Micro::Probe { item, head, back } = lane.micro {
                    let (ts, value) = unpack_version(words[i]);
                    if ts != EMPTY_TS && ts <= lane.snapshot {
                        // Accepted.
                        if record {
                            lane.reads_log.push((item, value));
                        }
                        let track = !lane.is_rot();
                        if track && !lane.rs.contains(&item) {
                            lane.rs.push(item);
                            assert!(
                                lane.rs.len() <= area.max_rs(),
                                "read-set overflow: lane {i} exceeded {} entries",
                                area.max_rs()
                            );
                            lane.micro = Micro::AppendRs { item, value };
                        } else {
                            lane.micro = Micro::NeedNext(Some(value));
                        }
                    } else if back + 1 >= nv {
                        lane.micro = Micro::Overflow;
                    } else {
                        lane.micro = Micro::Probe {
                            item,
                            head,
                            back: back + 1,
                        };
                    }
                }
            }
            return false;
        }

        let rs_mask = self.mask_of(|m| matches!(m, Micro::AppendRs { .. }));
        if rs_mask != 0 {
            let lanes = &self.lanes;
            w.global_write(
                rs_mask,
                |l| area.rs_addr(l, lanes[l].rs.len() - 1),
                |l| match &lanes[l].micro {
                    Micro::AppendRs { item, .. } => *item,
                    _ => unreachable!(),
                },
            );
            for lane in self.lanes.iter_mut() {
                if let Micro::AppendRs { value, .. } = lane.micro {
                    lane.micro = Micro::NeedNext(Some(value));
                }
            }
            return false;
        }

        // Nothing but pure logic left: done when no lane still needs steps.
        self.lanes
            .iter()
            .all(|l| matches!(l.micro, Micro::Idle | Micro::BodyDone | Micro::Overflow))
    }

    fn mask_of(&self, f: impl Fn(&Micro) -> bool) -> Mask {
        let mut m = 0;
        for (i, lane) in self.lanes.iter().enumerate() {
            if f(&lane.micro) {
                m |= 1 << i;
            }
        }
        m
    }

    /// Record an abort of lane `lane` (attributed to `reason`) and arm it
    /// for retry.
    pub fn abort_lane(&mut self, lane: usize, now: u64, reason: AbortReason) {
        let l = &mut self.lanes[lane];
        let wasted = now.saturating_sub(l.attempt_start);
        l.stats.wasted_cycles += wasted;
        if l.is_rot() {
            l.stats.rot_aborts += 1;
        } else {
            l.stats.update_aborts += 1;
        }
        l.retry_pending = true;
        l.attempts += 1;
        l.micro = Micro::Idle;
        self.metrics.record_abort(reason, wasted);
    }

    /// Terminally fail lane `lane`'s transaction: account an abort with the
    /// (terminal) `reason` and drop the transaction instead of retrying it.
    /// Used by the recovery layer when a server is unreachable or a retry
    /// budget is exhausted.
    pub fn fail_lane(&mut self, lane: usize, now: u64, reason: AbortReason) {
        debug_assert!(reason.is_terminal(), "fail_lane with retriable reason");
        let l = &mut self.lanes[lane];
        let wasted = now.saturating_sub(l.attempt_start);
        l.stats.wasted_cycles += wasted;
        if l.is_rot() {
            l.stats.rot_aborts += 1;
        } else {
            l.stats.update_aborts += 1;
        }
        l.stats.failed += 1;
        l.logic = None;
        l.retry_pending = false;
        l.attempts = 0;
        l.micro = Micro::Idle;
        self.metrics.record_abort(reason, wasted);
    }

    /// Record a commit of lane `lane`. `cts` is `Some` for update
    /// transactions; `read_point` is the snapshot the reads reflect.
    pub fn commit_lane(&mut self, lane: usize, now: u64, cts: Option<u64>, read_point: u64) {
        let record = self.cfg.record_history;
        let l = &mut self.lanes[lane];
        let useful = now.saturating_sub(l.attempt_start);
        l.stats.useful_cycles += useful;
        if l.is_rot() {
            l.stats.rot_commits += 1;
        } else {
            l.stats.update_commits += 1;
        }
        if record {
            l.records.push(TxRecord {
                thread: l.thread_id,
                read_point,
                cts,
                reads: std::mem::take(&mut l.reads_log),
                writes: l.ws.clone(),
            });
        }
        l.logic = None;
        l.retry_pending = false;
        l.attempts = 0;
        l.micro = Micro::Idle;
        self.metrics.record_commit(useful);
    }

    /// Aggregate outcome counters over all lanes.
    pub fn stats(&self) -> CommitStats {
        let mut s = CommitStats::default();
        for lane in &self.lanes {
            s.merge(&lane.stats);
        }
        s
    }

    /// Drain all committed-transaction records.
    pub fn take_records(&mut self) -> Vec<TxRecord> {
        let mut out = Vec::new();
        for lane in self.lanes.iter_mut() {
            out.append(&mut lane.records);
        }
        out
    }

    /// True when every lane's source is exhausted and nothing is in flight.
    pub fn all_finished(&self) -> bool {
        self.lanes.iter().all(|l| l.finished())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, GpuConfig, StepOutcome, WarpProgram};

    /// A source yielding a fixed list of transactions.
    struct ListSource<T: TxLogic>(Vec<T>);
    impl<T: TxLogic + 'static> TxSource for ListSource<T> {
        type Tx = T;
        fn next_tx(&mut self) -> Option<T> {
            self.0.pop()
        }
    }

    /// Body: read item, write item+1 with value read+delta, finish.
    #[derive(Clone)]
    struct CopyTx {
        item: u64,
        delta: u64,
        step: u8,
        seen: u64,
        rot: bool,
    }
    impl TxLogic for CopyTx {
        fn is_read_only(&self) -> bool {
            self.rot
        }
        fn reset(&mut self) {
            self.step = 0;
            self.seen = 0;
        }
        fn next(&mut self, last: Option<u64>) -> TxOp {
            match self.step {
                0 => {
                    self.step = 1;
                    TxOp::Read { item: self.item }
                }
                1 => {
                    self.seen = last.unwrap();
                    self.step = 2;
                    if self.rot {
                        TxOp::Finish
                    } else {
                        TxOp::Write {
                            item: self.item + 1,
                            value: self.seen + self.delta,
                        }
                    }
                }
                _ => TxOp::Finish,
            }
        }
    }

    /// Harness program: begin one round, run bodies to completion, stop.
    struct OneRound {
        exec: MvExec<ListSource<CopyTx>>,
        heap: VBoxHeap,
        area: PlainSetArea,
        gts_addr: u64,
        begun: bool,
        pub done: bool,
    }
    impl WarpProgram for OneRound {
        fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
            if self.done {
                return StepOutcome::Done;
            }
            if !self.begun {
                self.begun = true;
                if !self.exec.begin_round(w, self.gts_addr) {
                    self.done = true;
                }
                return StepOutcome::Running;
            }
            if self.exec.step_bodies(w, &self.heap, &self.area) {
                self.done = true;
            }
            StepOutcome::Running
        }
    }

    fn setup(txs: Vec<CopyTx>, gts: u64, nv: u64) -> (Device, VBoxHeap, PlainSetArea, u64) {
        let mut dev = Device::new(GpuConfig::default());
        let gts_addr = dev.alloc_global(1);
        dev.global_mut().write(gts_addr, gts);
        let heap = VBoxHeap::init(dev.global_mut(), 64, nv, |i| i * 10);
        let area = PlainSetArea::alloc(dev.global_mut(), 8, 8);
        let _ = txs;
        (dev, heap, area, gts_addr)
    }

    fn run_round(txs: Vec<CopyTx>, gts: u64, nv: u64) -> (Device, OneRound) {
        let (mut dev, heap, area, gts_addr) = setup(txs.clone(), gts, nv);
        let exec = MvExec::new(vec![ListSource(txs)], 0, MvExecConfig::default());
        let id = dev.spawn(
            0,
            Box::new(OneRound {
                exec,
                heap,
                area,
                gts_addr,
                begun: false,
                done: false,
            }),
        );
        dev.run_to_completion();
        let prog = dev.take_program(id).downcast::<OneRound>().unwrap();
        (dev, *prog)
    }

    #[test]
    fn body_reads_initial_version_and_buffers_write() {
        let tx = CopyTx {
            item: 3,
            delta: 5,
            step: 0,
            seen: 0,
            rot: false,
        };
        let (_, prog) = run_round(vec![tx], 0, 2);
        let lane = &prog.exec.lanes[0];
        assert!(lane.body_done());
        assert_eq!(lane.reads_log, vec![(3, 30)]);
        assert_eq!(lane.rs, vec![3]);
        assert_eq!(lane.ws, vec![(4, 35)]);
    }

    #[test]
    fn rot_tracks_no_sets() {
        let tx = CopyTx {
            item: 2,
            delta: 0,
            step: 0,
            seen: 0,
            rot: true,
        };
        let (_, prog) = run_round(vec![tx], 0, 2);
        let lane = &prog.exec.lanes[0];
        assert!(lane.body_done());
        assert!(lane.rs.is_empty() && lane.ws.is_empty());
        assert_eq!(lane.reads_log, vec![(2, 20)]);
    }

    #[test]
    fn set_area_receives_appends() {
        let tx = CopyTx {
            item: 1,
            delta: 2,
            step: 0,
            seen: 0,
            rot: false,
        };
        let (dev, prog) = run_round(vec![tx], 0, 2);
        let area = &prog.area;
        assert_eq!(dev.global()[area.rs_addr(0, 0) as usize], 1);
        let (item, value) = unpack_ws_entry(dev.global()[area.ws_addr(0, 0) as usize]);
        assert_eq!((item, value), (2, 12));
    }

    #[test]
    fn snapshot_too_old_overflows() {
        // GTS = 5 but the only version has ts 0 — fine. Now set GTS below the
        // newest version: make a heap where item 0's single version has ts 9.
        let mut dev = Device::new(GpuConfig::default());
        let gts_addr = dev.alloc_global(1);
        dev.global_mut().write(gts_addr, 3);
        let heap = VBoxHeap::init(dev.global_mut(), 8, 1, |i| i);
        // Overwrite item 0's version with ts=9 (newer than snapshot 3).
        let w0 = heap.version_addr(0, 0);
        dev.global_mut().write(w0, crate::vbox::pack_version(9, 99));
        let area = PlainSetArea::alloc(dev.global_mut(), 4, 4);
        let exec = MvExec::new(
            vec![ListSource(vec![CopyTx {
                item: 0,
                delta: 1,
                step: 0,
                seen: 0,
                rot: false,
            }])],
            0,
            MvExecConfig::default(),
        );
        let id = dev.spawn(
            0,
            Box::new(OneRound {
                exec,
                heap,
                area,
                gts_addr,
                begun: false,
                done: false,
            }),
        );
        dev.run_to_completion();
        let prog = dev.take_program(id).downcast::<OneRound>().unwrap();
        assert!(prog.exec.lanes[0].overflowed());
    }

    #[test]
    fn read_your_own_write() {
        // Two-op tx via CopyTx chained: write then read back. Use a custom
        // body instead.
        #[derive(Clone)]
        struct Waw {
            step: u8,
            pub reread: u64,
        }
        impl TxLogic for Waw {
            fn is_read_only(&self) -> bool {
                false
            }
            fn reset(&mut self) {
                self.step = 0;
            }
            fn next(&mut self, last: Option<u64>) -> TxOp {
                match self.step {
                    0 => {
                        self.step = 1;
                        TxOp::Write { item: 5, value: 77 }
                    }
                    1 => {
                        self.step = 2;
                        TxOp::Read { item: 5 }
                    }
                    _ => {
                        if let Some(v) = last {
                            self.reread = v;
                        }
                        TxOp::Finish
                    }
                }
            }
        }
        struct WawRound {
            exec: MvExec<ListSource<Waw>>,
            heap: VBoxHeap,
            area: PlainSetArea,
            gts_addr: u64,
            begun: bool,
            done: bool,
        }
        impl WarpProgram for WawRound {
            fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
                if self.done {
                    return StepOutcome::Done;
                }
                if !self.begun {
                    self.begun = true;
                    self.exec.begin_round(w, self.gts_addr);
                    return StepOutcome::Running;
                }
                if self.exec.step_bodies(w, &self.heap, &self.area) {
                    self.done = true;
                }
                StepOutcome::Running
            }
        }
        let mut dev = Device::new(GpuConfig::default());
        let gts_addr = dev.alloc_global(1);
        let heap = VBoxHeap::init(dev.global_mut(), 8, 2, |i| i);
        let area = PlainSetArea::alloc(dev.global_mut(), 4, 4);
        let exec = MvExec::new(
            vec![ListSource(vec![Waw { step: 0, reread: 0 }])],
            0,
            MvExecConfig::default(),
        );
        let id = dev.spawn(
            0,
            Box::new(WawRound {
                exec,
                heap,
                area,
                gts_addr,
                begun: false,
                done: false,
            }),
        );
        dev.run_to_completion();
        let prog = dev.take_program(id).downcast::<WawRound>().unwrap();
        let lane = &prog.exec.lanes[0];
        assert!(lane.body_done());
        // The reread observed the pending write (private state), so it is
        // excluded from the recorded history and the read-set.
        assert!(lane.reads_log.is_empty());
        assert_eq!(lane.ws, vec![(5, 77)]);
        assert!(lane.rs.is_empty());
        // The body itself did see the value 77 (reread field).
        let logic = lane.logic.as_ref().unwrap();
        assert_eq!(logic.reread, 77);
    }

    #[test]
    fn commit_and_abort_bookkeeping() {
        let tx = CopyTx {
            item: 0,
            delta: 1,
            step: 0,
            seen: 0,
            rot: false,
        };
        let (_, mut prog) = run_round(vec![tx], 0, 2);
        prog.exec.abort_lane(0, 1000, AbortReason::ReadValidation);
        assert_eq!(prog.exec.lanes[0].stats.update_aborts, 1);
        assert!(prog.exec.lanes[0].retry_pending);
        assert!(!prog.exec.all_finished());
        // Pretend a retry ran and commit it.
        prog.exec.lanes[0].reads_log = vec![(0, 0)];
        prog.exec.commit_lane(0, 2000, Some(1), 0);
        let stats = prog.exec.stats();
        assert_eq!(stats.update_commits, 1);
        assert_eq!(stats.update_aborts, 1);
        assert!(stats.wasted_cycles > 0);
        // Metrics mirror the outcome counters with latencies attached.
        assert_eq!(
            prog.exec.metrics.aborts.count(AbortReason::ReadValidation),
            1
        );
        assert_eq!(prog.exec.metrics.abort_latency.count(), 1);
        assert_eq!(prog.exec.metrics.commit_latency.count(), 1);
        let records = prog.exec.take_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cts, Some(1));
        assert!(prog.exec.all_finished());
    }

    #[test]
    fn fail_lane_drops_the_transaction_terminally() {
        let tx = CopyTx {
            item: 0,
            delta: 1,
            step: 0,
            seen: 0,
            rot: false,
        };
        let (_, mut prog) = run_round(vec![tx], 0, 2);
        prog.exec.abort_lane(0, 500, AbortReason::ReadValidation);
        assert!(prog.exec.lanes[0].retry_pending);
        assert_eq!(prog.exec.lanes[0].attempts, 1);
        prog.exec.fail_lane(0, 900, AbortReason::ServerTimeout);
        let l = &prog.exec.lanes[0];
        assert!(l.finished());
        assert_eq!(l.stats.failed, 1);
        assert_eq!(l.stats.update_aborts, 2);
        assert!(prog.exec.all_finished());
        assert_eq!(
            prog.exec.metrics.aborts.count(AbortReason::ServerTimeout),
            1
        );
        // The metrics/stats consistency the STM tests rely on still holds.
        assert_eq!(prog.exec.metrics.aborts.total(), prog.exec.stats().aborts());
    }

    #[test]
    fn retry_budget_converts_endless_retry_into_terminal_failure() {
        struct Churn {
            exec: MvExec<ListSource<CopyTx>>,
            heap: VBoxHeap,
            area: PlainSetArea,
            gts_addr: u64,
            in_round: bool,
        }
        impl WarpProgram for Churn {
            fn step(&mut self, w: &mut WarpCtx) -> StepOutcome {
                if !self.in_round {
                    if !self.exec.begin_round(w, self.gts_addr) {
                        return StepOutcome::Done;
                    }
                    self.in_round = true;
                    return StepOutcome::Running;
                }
                if self.exec.step_bodies(w, &self.heap, &self.area) {
                    // Refuse every body, as a hopeless conflict would.
                    let now = w.now();
                    for i in 0..self.exec.lanes.len() {
                        if self.exec.lanes[i].logic.is_some() {
                            self.exec.abort_lane(i, now, AbortReason::ReadValidation);
                        }
                    }
                    self.in_round = false;
                }
                StepOutcome::Running
            }
        }
        let mut dev = Device::new(GpuConfig::default());
        let gts_addr = dev.alloc_global(1);
        let heap = VBoxHeap::init(dev.global_mut(), 8, 2, |i| i);
        let area = PlainSetArea::alloc(dev.global_mut(), 4, 4);
        let cfg = MvExecConfig {
            retry: crate::recovery::RetryPolicy {
                retry_budget: Some(2),
                ..Default::default()
            },
            ..MvExecConfig::default()
        };
        let exec = MvExec::new(
            vec![ListSource(vec![CopyTx {
                item: 0,
                delta: 1,
                step: 0,
                seen: 0,
                rot: false,
            }])],
            0,
            cfg,
        );
        let id = dev.spawn(
            0,
            Box::new(Churn {
                exec,
                heap,
                area,
                gts_addr,
                in_round: false,
            }),
        );
        dev.run_to_completion();
        let prog = dev.take_program(id).downcast::<Churn>().unwrap();
        let stats = prog.exec.stats();
        assert_eq!(stats.commits(), 0);
        assert_eq!(stats.failed, 1);
        // Two budgeted aborts plus the terminal RetryBudgetExhausted one.
        assert_eq!(stats.update_aborts, 3);
        assert_eq!(
            prog.exec
                .metrics
                .aborts
                .count(AbortReason::RetryBudgetExhausted),
            1
        );
    }

    #[test]
    fn multi_lane_round_runs_all_lanes() {
        let mut dev = Device::new(GpuConfig::default());
        let gts_addr = dev.alloc_global(1);
        let heap = VBoxHeap::init(dev.global_mut(), 64, 2, |i| i * 10);
        let area = PlainSetArea::alloc(dev.global_mut(), 8, 8);
        let sources = (0..8)
            .map(|i| {
                ListSource(vec![CopyTx {
                    item: i as u64 * 2,
                    delta: 1,
                    step: 0,
                    seen: 0,
                    rot: i % 2 == 0,
                }])
            })
            .collect();
        let exec = MvExec::new(sources, 0, MvExecConfig::default());
        let id = dev.spawn(
            0,
            Box::new(OneRound {
                exec,
                heap,
                area,
                gts_addr,
                begun: false,
                done: false,
            }),
        );
        dev.run_to_completion();
        let prog = dev.take_program(id).downcast::<OneRound>().unwrap();
        for (i, lane) in prog.exec.lanes.iter().enumerate() {
            assert!(lane.body_done(), "lane {i} not done");
            assert_eq!(lane.reads_log, vec![(i as u64 * 2, i as u64 * 20)]);
        }
        // Divergence: ROT lanes finish earlier than update lanes (which do
        // the extra write/append steps) — some idle-lane time must accrue.
        assert!(dev.warp_stats(id).divergence_cycles > 0);
    }
}
