//! Named phases of transaction execution and commit.
//!
//! Each variant maps onto a `gpu_sim::PhaseId`; kernels call
//! `WarpCtx::set_phase(Phase::X.id())` and the harness reads the cycle
//! totals back per phase to print the paper's breakdown tables.

use gpu_sim::PhaseId;

/// The phases distinguished by the paper's Tables I and III, plus the
/// non-commit phases we track to build full timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Default bucket: kernel prologue/epilogue, scheduling glue.
    Idle = 0,
    /// Running the transaction body (reads, writes, ALU).
    Execution = 1,
    /// Client-side intra-warp pre-validation (CSMV only).
    PreValidation = 2,
    /// Client blocked waiting for the commit server's response (CSMV only).
    WaitServer = 3,
    /// Commit-time validation against concurrently committed transactions.
    Validation = 4,
    /// Inserting the transaction's record into the ATR.
    RecordInsert = 5,
    /// Applying the write-set to the versioned boxes.
    WriteBack = 6,
    /// Waiting for the turn to publish (GTS turn-taking, CSMV client).
    WaitGts = 7,
    /// Server receiver warp: polling mailboxes and dispatching.
    Receive = 8,
    /// Server worker warp: idle, waiting for dispatched work.
    ServerIdle = 9,
}

impl Phase {
    /// The raw `gpu_sim` phase id.
    #[inline]
    pub const fn id(self) -> PhaseId {
        self as PhaseId
    }

    /// All phases, in id order.
    pub const ALL: [Phase; 10] = [
        Phase::Idle,
        Phase::Execution,
        Phase::PreValidation,
        Phase::WaitServer,
        Phase::Validation,
        Phase::RecordInsert,
        Phase::WriteBack,
        Phase::WaitGts,
        Phase::Receive,
        Phase::ServerIdle,
    ];

    /// Human-readable name used by the benchmark tables.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Idle => "Idle",
            Phase::Execution => "Execution",
            Phase::PreValidation => "Pre-Val.",
            Phase::WaitServer => "Wait server",
            Phase::Validation => "Valid.",
            Phase::RecordInsert => "Rec. Insert",
            Phase::WriteBack => "Write-back",
            Phase::WaitGts => "Wait GTS",
            Phase::Receive => "Receive",
            Phase::ServerIdle => "Server idle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_unique() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.id() as usize, i);
        }
    }

    #[test]
    fn ids_fit_gpu_sim_budget() {
        assert!(Phase::ALL.len() <= gpu_sim::MAX_PHASES);
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }
}
