//! Value-based history checking: the correctness oracle of the test-suite.
//!
//! Every STM kernel records, for each *committed* transaction, the values it
//! read and wrote plus two timestamps: the `read_point` (the committed state
//! its reads claim to reflect — the snapshot for MV STMs, the validation
//! point for single-versioned STMs) and, for update transactions, the commit
//! timestamp `cts`. The checker replays the writes in `cts` order to rebuild
//! the ground-truth version history and then verifies that every recorded
//! read matches the committed state at the transaction's read point — and,
//! for multi-version STMs, that update transactions were still valid at
//! commit time (reads unchanged between `read_point` and `cts − 1`), which
//! together imply opacity of the committed history.

/// What one committed transaction claims to have done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRecord {
    /// Originating thread (diagnostics only).
    pub thread: usize,
    /// Timestamp of the committed state the reads reflect.
    pub read_point: u64,
    /// Commit timestamp for update transactions, `None` for read-only ones.
    pub cts: Option<u64>,
    /// `(item, value)` pairs in read order.
    pub reads: Vec<(u64, u64)>,
    /// `(item, value)` pairs in write order.
    pub writes: Vec<(u64, u64)>,
}

/// Why a history was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// Two committed update transactions share a commit timestamp.
    DuplicateCts { cts: u64 },
    /// A read-only transaction has writes, or an update record has no cts
    /// despite writes.
    MalformedRecord { thread: usize, detail: String },
    /// A read observed a value that was not the committed value at the
    /// transaction's read point.
    InconsistentRead {
        thread: usize,
        item: u64,
        observed: u64,
        expected: u64,
        at_ts: u64,
    },
    /// An update transaction's read was overwritten between its read point
    /// and its commit (validation should have aborted it).
    StaleAtCommit {
        thread: usize,
        item: u64,
        observed: u64,
        expected: u64,
        cts: u64,
    },
    /// An update transaction's read point is not before its commit point.
    NonMonotoneTimestamps {
        thread: usize,
        read_point: u64,
        cts: u64,
    },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::DuplicateCts { cts } => write!(f, "duplicate commit timestamp {cts}"),
            HistoryError::MalformedRecord { thread, detail } => {
                write!(f, "malformed record from thread {thread}: {detail}")
            }
            HistoryError::InconsistentRead {
                thread,
                item,
                observed,
                expected,
                at_ts,
            } => write!(
                f,
                "thread {thread} read item {item} = {observed}, but committed state at ts \
                 {at_ts} was {expected}"
            ),
            HistoryError::StaleAtCommit {
                thread,
                item,
                observed,
                expected,
                cts,
            } => write!(
                f,
                "thread {thread} committed at {cts} having read item {item} = {observed}, \
                 but the value just before its commit was {expected}"
            ),
            HistoryError::NonMonotoneTimestamps {
                thread,
                read_point,
                cts,
            } => write!(
                f,
                "thread {thread}: read point {read_point} not before commit ts {cts}"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

/// Reconstructed multi-version state: per item, the committed versions in
/// commit order.
struct VersionHistory {
    /// `(cts, value)` per item, sorted ascending by cts.
    versions: std::collections::HashMap<u64, Vec<(u64, u64)>>,
    initial: std::collections::HashMap<u64, u64>,
}

impl VersionHistory {
    fn value_at(&self, item: u64, ts: u64) -> u64 {
        let init = *self.initial.get(&item).unwrap_or(&0);
        match self.versions.get(&item) {
            None => init,
            Some(vs) => {
                // Versions are sorted; find the newest with cts <= ts.
                match vs.partition_point(|&(cts, _)| cts <= ts) {
                    0 => init,
                    n => vs[n - 1].1,
                }
            }
        }
    }
}

/// Verify a committed history.
///
/// * `records` — one entry per committed transaction (aborted attempts must
///   not be recorded);
/// * `initial` — initial `(item, value)` state (absent items are 0);
/// * `check_validity_at_commit` — additionally require update transactions'
///   reads to be unchanged at `cts − 1` (true for MV STMs, whose validation
///   guarantees it; single-versioned STMs set `read_point = cts − 1`
///   themselves, making this check redundant but harmless).
///
/// Returns the number of update transactions on success.
pub fn check_history(
    records: &[TxRecord],
    initial: &std::collections::HashMap<u64, u64>,
    check_validity_at_commit: bool,
) -> Result<u64, HistoryError> {
    // -- structural checks and version reconstruction --------------------
    let mut versions: std::collections::HashMap<u64, Vec<(u64, u64)>> =
        std::collections::HashMap::new();
    let mut seen_cts = std::collections::HashSet::new();
    let mut updates = 0u64;
    for r in records {
        match r.cts {
            Some(cts) => {
                updates += 1;
                if !seen_cts.insert(cts) {
                    return Err(HistoryError::DuplicateCts { cts });
                }
                if r.read_point >= cts {
                    return Err(HistoryError::NonMonotoneTimestamps {
                        thread: r.thread,
                        read_point: r.read_point,
                        cts,
                    });
                }
                for &(item, value) in &r.writes {
                    versions.entry(item).or_default().push((cts, value));
                }
            }
            None => {
                if !r.writes.is_empty() {
                    return Err(HistoryError::MalformedRecord {
                        thread: r.thread,
                        detail: "read-only transaction has writes".into(),
                    });
                }
            }
        }
    }
    for vs in versions.values_mut() {
        vs.sort_unstable_by_key(|&(cts, _)| cts);
    }
    let hist = VersionHistory {
        versions,
        initial: initial.clone(),
    };

    // -- value checks -----------------------------------------------------
    for r in records {
        for &(item, observed) in &r.reads {
            // A transaction sees its own earlier writes; skip read-after-write
            // entries (the recorded value is the pending write, not committed
            // state). STMs record the *first* read of each item, but we stay
            // robust to repeated reads after own-writes.
            if let Some(&(_, wv)) = r.writes.iter().find(|&&(wi, _)| wi == item) {
                if observed == wv {
                    continue;
                }
            }
            let expected = hist.value_at(item, r.read_point);
            if observed != expected {
                return Err(HistoryError::InconsistentRead {
                    thread: r.thread,
                    item,
                    observed,
                    expected,
                    at_ts: r.read_point,
                });
            }
            if check_validity_at_commit {
                if let Some(cts) = r.cts {
                    let at_commit = hist.value_at(item, cts - 1);
                    if observed != at_commit {
                        return Err(HistoryError::StaleAtCommit {
                            thread: r.thread,
                            item,
                            observed,
                            expected: at_commit,
                            cts,
                        });
                    }
                }
            }
        }
    }
    Ok(updates)
}

/// Replay a committed history's writes in `cts` order over the initial
/// state, yielding the final committed value of every item. This is the
/// ground truth the cross-STM and cross-backend equivalence tests compare
/// final store states against.
pub fn replay_committed(
    records: &[TxRecord],
    initial: &std::collections::HashMap<u64, u64>,
) -> std::collections::HashMap<u64, u64> {
    let mut committed: Vec<&TxRecord> = records.iter().filter(|r| r.cts.is_some()).collect();
    committed.sort_unstable_by_key(|r| r.cts);
    let mut state = initial.clone();
    for r in committed {
        for &(item, value) in &r.writes {
            state.insert(item, value);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn rec(
        thread: usize,
        read_point: u64,
        cts: Option<u64>,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
    ) -> TxRecord {
        TxRecord {
            thread,
            read_point,
            cts,
            reads: reads.to_vec(),
            writes: writes.to_vec(),
        }
    }

    #[test]
    fn accepts_serial_history() {
        let records = vec![
            rec(0, 0, Some(1), &[(1, 0)], &[(1, 10)]),
            rec(1, 1, Some(2), &[(1, 10)], &[(1, 20)]),
            rec(2, 2, None, &[(1, 20)], &[]),
        ];
        assert_eq!(check_history(&records, &HashMap::new(), true), Ok(2));
    }

    #[test]
    fn accepts_reads_from_initial_state() {
        let mut init = HashMap::new();
        init.insert(5, 99);
        let records = vec![rec(0, 0, None, &[(5, 99), (6, 0)], &[])];
        assert_eq!(check_history(&records, &init, true), Ok(0));
    }

    #[test]
    fn rejects_inconsistent_snapshot_read() {
        // ROT at snapshot 1 must see item1=10, not 20.
        let records = vec![
            rec(0, 0, Some(1), &[], &[(1, 10)]),
            rec(1, 1, Some(2), &[], &[(1, 20)]),
            rec(2, 1, None, &[(1, 20)], &[]),
        ];
        assert!(matches!(
            check_history(&records, &HashMap::new(), true),
            Err(HistoryError::InconsistentRead {
                item: 1,
                observed: 20,
                expected: 10,
                ..
            })
        ));
    }

    #[test]
    fn rejects_stale_read_at_commit() {
        // T2 read item1=0 at snapshot 0, but T1 committed item1=10 at ts 1,
        // before T2's commit at ts 2 — validation should have killed T2.
        let records = vec![
            rec(0, 0, Some(1), &[], &[(1, 10)]),
            rec(1, 0, Some(2), &[(1, 0)], &[(2, 7)]),
        ];
        assert!(matches!(
            check_history(&records, &HashMap::new(), true),
            Err(HistoryError::StaleAtCommit { item: 1, .. })
        ));
        // A single-versioned checker that set read_point = cts-1 itself would
        // reject via InconsistentRead instead; with checking disabled and an
        // honest read_point this is (snapshot-isolation-style) accepted.
        assert_eq!(check_history(&records, &HashMap::new(), false), Ok(2));
    }

    #[test]
    fn rejects_duplicate_cts() {
        let records = vec![
            rec(0, 0, Some(1), &[], &[(1, 1)]),
            rec(1, 0, Some(1), &[], &[(2, 1)]),
        ];
        assert!(matches!(
            check_history(&records, &HashMap::new(), true),
            Err(HistoryError::DuplicateCts { cts: 1 })
        ));
    }

    #[test]
    fn rejects_rot_with_writes() {
        let records = vec![rec(0, 0, None, &[], &[(1, 1)])];
        assert!(matches!(
            check_history(&records, &HashMap::new(), true),
            Err(HistoryError::MalformedRecord { .. })
        ));
    }

    #[test]
    fn rejects_read_point_after_commit() {
        let records = vec![rec(0, 3, Some(2), &[], &[(1, 1)])];
        assert!(matches!(
            check_history(&records, &HashMap::new(), true),
            Err(HistoryError::NonMonotoneTimestamps { .. })
        ));
    }

    #[test]
    fn own_writes_are_visible_to_later_reads() {
        // Tx writes (1,10) then re-reads 10 (read-after-write); the recorded
        // read must not be flagged even though committed state at snapshot
        // was 0.
        let records = vec![rec(0, 0, Some(1), &[(1, 0), (1, 10)], &[(1, 10)])];
        assert_eq!(check_history(&records, &HashMap::new(), true), Ok(1));
    }

    #[test]
    fn gaps_in_cts_are_tolerated() {
        let records = vec![
            rec(0, 0, Some(2), &[], &[(1, 10)]),
            rec(1, 2, Some(7), &[(1, 10)], &[(1, 20)]),
            rec(2, 7, None, &[(1, 20)], &[]),
        ];
        assert_eq!(check_history(&records, &HashMap::new(), true), Ok(2));
    }

    #[test]
    fn old_snapshot_sees_old_version() {
        let records = vec![
            rec(0, 0, Some(1), &[], &[(1, 10)]),
            rec(1, 1, Some(2), &[], &[(1, 20)]),
            // ROT with the older snapshot still sees version 10.
            rec(2, 1, None, &[(1, 10)], &[]),
            // ROT with the newer snapshot sees 20.
            rec(3, 2, None, &[(1, 20)], &[]),
        ];
        assert_eq!(check_history(&records, &HashMap::new(), true), Ok(2));
    }
}
