//! The versioned-box (VBox) heap layout shared by the multi-version GPU STMs.
//!
//! Each transactional item is a VBox: a bounded circular buffer of versions
//! plus a head pointer, laid out contiguously in simulated global memory:
//!
//! ```text
//! word 0            : head — ring index of the newest version
//! word 1 + k        : version slot k, packed as (commitTS << 32) | value
//! ```
//!
//! Packing a version into a single word makes version reads/writes atomic at
//! the simulator's word granularity, mirroring the paper's 8-byte
//! `(value, commitTS)` pairs (Table V prices each version at
//! `sizeof(X) + 4 = 8` bytes and the VBox metadata at 4 bytes).
//!
//! The reader protocol (walk backwards from the head, accept the first
//! version with `ts ≤ snapshot`, abort after `versions_per_box` misses) is
//! safe against concurrent write-backs because a recycled slot always holds
//! a *newer* timestamp than the snapshot of any reader that could still need
//! the old one — such readers simply exhaust the ring and abort with
//! [`VBoxHeap::SNAPSHOT_TOO_OLD`], the "spurious abort" behaviour the paper
//! studies in Table V.

use gpu_sim::mem::GlobalMemory;

/// Address map of an array of VBoxes in global memory.
#[derive(Debug, Clone)]
pub struct VBoxHeap {
    base: u64,
    num_items: u64,
    versions_per_box: u64,
}

impl VBoxHeap {
    /// Sentinel returned by probe logic when no version old enough survives.
    pub const SNAPSHOT_TOO_OLD: u64 = u64::MAX;

    /// Words occupied by one VBox.
    pub fn words_per_box(versions_per_box: u64) -> u64 {
        1 + versions_per_box
    }

    /// Allocate and initialize a heap of `num_items` boxes, each holding
    /// `versions_per_box` versions. Every box starts with one version
    /// `(ts = 0, value = initial(item))` in slot 0; the remaining slots hold
    /// the sentinel timestamp so probes skip them.
    pub fn init(
        global: &mut GlobalMemory,
        num_items: u64,
        versions_per_box: u64,
        mut initial: impl FnMut(u64) -> u64,
    ) -> Self {
        assert!(versions_per_box >= 1, "need at least one version per box");
        let words = num_items * Self::words_per_box(versions_per_box);
        let base = global.alloc(words as usize);
        let heap = Self {
            base,
            num_items,
            versions_per_box,
        };
        for item in 0..num_items {
            global.write(heap.head_addr(item), 0);
            global.write(heap.version_addr(item, 0), pack_version(0, initial(item)));
            for k in 1..versions_per_box {
                // Unused slots carry ts = EMPTY_TS so they never match a probe.
                global.write(heap.version_addr(item, k), pack_version(EMPTY_TS, 0));
            }
        }
        heap
    }

    /// Number of items.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// Versions retained per box.
    pub fn versions_per_box(&self) -> u64 {
        self.versions_per_box
    }

    /// Address of an item's head word.
    pub fn head_addr(&self, item: u64) -> u64 {
        debug_assert!(item < self.num_items);
        self.base + item * Self::words_per_box(self.versions_per_box)
    }

    /// Address of ring slot `k` of an item.
    pub fn version_addr(&self, item: u64, k: u64) -> u64 {
        debug_assert!(item < self.num_items && k < self.versions_per_box);
        self.head_addr(item) + 1 + k
    }

    /// Ring slot that a write-back with the box currently at `head` targets.
    pub fn next_slot(&self, head: u64) -> u64 {
        (head + 1) % self.versions_per_box
    }

    /// Host-side (uncosted) read of the newest version — setup/inspection.
    pub fn newest(&self, global: &GlobalMemory, item: u64) -> (u64, u64) {
        let head = global.read(self.head_addr(item));
        unpack_version(global.read(self.version_addr(item, head)))
    }

    /// Host-side versioned read: the value visible at `snapshot`, or `None`
    /// if the ring no longer holds an old-enough version.
    pub fn read_at(&self, global: &GlobalMemory, item: u64, snapshot: u64) -> Option<u64> {
        let head = global.read(self.head_addr(item));
        for back in 0..self.versions_per_box {
            let k = (head + self.versions_per_box - back) % self.versions_per_box;
            let (ts, value) = unpack_version(global.read(self.version_addr(item, k)));
            if ts != EMPTY_TS && ts <= snapshot {
                return Some(value);
            }
        }
        None
    }

    /// The paper's Table V memory formula, in bytes: per item,
    /// `4 + (sizeof(value) + 4) · #versions` with 4-byte values.
    pub fn data_size_bytes(&self) -> u64 {
        self.num_items * (4 + 8 * self.versions_per_box)
    }
}

/// Timestamp marking an empty version slot (never matches `ts ≤ snapshot`
/// because snapshots are < 2³² − 1).
pub const EMPTY_TS: u64 = u32::MAX as u64;

/// Pack `(commit ts, value)` into one word. Both must fit in 32 bits —
/// enforced because a torn version word would corrupt the STM.
#[inline]
pub fn pack_version(ts: u64, value: u64) -> u64 {
    debug_assert!(ts <= u32::MAX as u64, "commit timestamp overflows 32 bits");
    debug_assert!(value <= u32::MAX as u64, "transactional values are 32-bit");
    (ts << 32) | value
}

/// Unpack a version word into `(commit ts, value)`.
#[inline]
pub fn unpack_version(word: u64) -> (u64, u64) {
    (word >> 32, word & 0xFFFF_FFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap3() -> (GlobalMemory, VBoxHeap) {
        let mut g = GlobalMemory::new();
        let h = VBoxHeap::init(&mut g, 4, 3, |item| 100 + item);
        (g, h)
    }

    /// Host-side version append used by the tests below.
    fn append(g: &mut GlobalMemory, h: &VBoxHeap, item: u64, ts: u64, value: u64) {
        let head = g.read(h.head_addr(item));
        let slot = h.next_slot(head);
        g.write(h.version_addr(item, slot), pack_version(ts, value));
        g.write(h.head_addr(item), slot);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (ts, v) in [(0, 0), (1, 42), (u32::MAX as u64, u32::MAX as u64)] {
            assert_eq!(unpack_version(pack_version(ts, v)), (ts, v));
        }
    }

    #[test]
    fn init_populates_every_box() {
        let (g, h) = heap3();
        for item in 0..4 {
            assert_eq!(h.newest(&g, item), (0, 100 + item));
            assert_eq!(h.read_at(&g, item, 0), Some(100 + item));
            assert_eq!(h.read_at(&g, item, 999), Some(100 + item));
        }
    }

    #[test]
    fn addresses_do_not_overlap() {
        let (_, h) = heap3();
        let mut seen = std::collections::HashSet::new();
        for item in 0..4 {
            assert!(seen.insert(h.head_addr(item)));
            for k in 0..3 {
                assert!(seen.insert(h.version_addr(item, k)));
            }
        }
    }

    #[test]
    fn snapshot_selects_correct_version() {
        let (mut g, h) = heap3();
        append(&mut g, &h, 0, 5, 500);
        append(&mut g, &h, 0, 9, 900);
        assert_eq!(h.read_at(&g, 0, 0), Some(100));
        assert_eq!(h.read_at(&g, 0, 4), Some(100));
        assert_eq!(h.read_at(&g, 0, 5), Some(500));
        assert_eq!(h.read_at(&g, 0, 8), Some(500));
        assert_eq!(h.read_at(&g, 0, 9), Some(900));
        assert_eq!(h.read_at(&g, 0, 100), Some(900));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_old_snapshots_fail() {
        let (mut g, h) = heap3();
        append(&mut g, &h, 0, 5, 500);
        append(&mut g, &h, 0, 9, 900);
        // Ring full (ts 0, 5, 9); next append evicts ts=0.
        append(&mut g, &h, 0, 12, 1200);
        assert_eq!(
            h.read_at(&g, 0, 4),
            None,
            "snapshot 4 needs the evicted ts=0 version"
        );
        assert_eq!(h.read_at(&g, 0, 5), Some(500));
        assert_eq!(h.read_at(&g, 0, 12), Some(1200));
    }

    #[test]
    fn single_version_box_behaves_like_plain_word() {
        let mut g = GlobalMemory::new();
        let h = VBoxHeap::init(&mut g, 1, 1, |_| 7);
        assert_eq!(h.read_at(&g, 0, 0), Some(7));
        append(&mut g, &h, 0, 3, 8);
        assert_eq!(h.read_at(&g, 0, 3), Some(8));
        assert_eq!(h.read_at(&g, 0, 2), None);
    }

    #[test]
    fn table_v_memory_formula() {
        // Paper, Table V: 6 000 items at 2 versions ⇒ 6000·(4+8·2) = 117 KiB.
        let mut g = GlobalMemory::new();
        let h = VBoxHeap::init(&mut g, 6_000, 2, |_| 0);
        assert_eq!(h.data_size_bytes(), 6_000 * 20);
        assert!((h.data_size_bytes() as f64 / 1024.0 - 117.19).abs() < 0.01);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: unbounded version list per item.
    #[derive(Default)]
    struct RefBox {
        versions: Vec<(u64, u64)>, // (ts, value), ascending ts
    }

    impl RefBox {
        fn read_at(&self, snapshot: u64, ring: u64) -> Option<u64> {
            // Only the newest `ring` versions survive.
            let start = self.versions.len().saturating_sub(ring as usize);
            self.versions[start..]
                .iter()
                .rev()
                .find(|&&(ts, _)| ts <= snapshot)
                .map(|&(_, v)| v)
        }
    }

    proptest! {
        /// Appends with increasing timestamps + snapshot reads agree with an
        /// unbounded reference truncated to the ring size.
        #[test]
        fn ring_matches_reference_model(
            nv in 1u64..6,
            appends in proptest::collection::vec((1u64..50, 0u64..1000), 0..20),
            probes in proptest::collection::vec(0u64..2_000, 1..16),
        ) {
            let mut g = GlobalMemory::new();
            let h = VBoxHeap::init(&mut g, 1, nv, |_| 7);
            let mut reference = RefBox::default();
            reference.versions.push((0, 7));
            let mut ts = 0;
            for (dt, value) in appends {
                ts += dt; // strictly increasing commit timestamps
                let head = g.read(h.head_addr(0));
                let slot = h.next_slot(head);
                g.write(h.version_addr(0, slot), pack_version(ts, value));
                g.write(h.head_addr(0), slot);
                reference.versions.push((ts, value));
            }
            for snapshot in probes {
                prop_assert_eq!(
                    h.read_at(&g, 0, snapshot),
                    reference.read_at(snapshot, nv),
                    "nv={} snapshot={}", nv, snapshot
                );
            }
        }

        #[test]
        fn pack_roundtrip(ts in 0u64..u32::MAX as u64, v in 0u64..=u32::MAX as u64) {
            prop_assert_eq!(unpack_version(pack_version(ts, v)), (ts, v));
        }
    }
}
