//! # stm-core — shared STM abstractions
//!
//! Everything the four STM implementations (CSMV, JVSTM-GPU, PR-STM,
//! JVSTM-CPU) and the workload generators have in common:
//!
//! * [`phase::Phase`] — the named commit-phase identifiers whose cycle
//!   accounting produces the paper's Tables I and III;
//! * [`logic::TxLogic`] / [`logic::TxSource`] — the resumable transaction
//!   "bytecode" through which STM-agnostic workloads (Bank, MemcachedGPU)
//!   drive any STM one operation at a time;
//! * [`stats::CommitStats`] and [`stats::TimeBreakdown`] — commit/abort and
//!   wasted-time bookkeeping behind Figures 2–4 and Tables II/IV;
//! * [`history`] — a value-based history checker that verifies *opacity*:
//!   every committed transaction observed exactly the committed state at its
//!   read point, and update transactions were still valid at their commit
//!   point. The entire test-suite funnels through this oracle.

#![forbid(unsafe_code)]

pub mod gc;
pub mod history;
pub mod logic;
pub mod metrics;
pub mod mv_exec;
pub mod phase;
pub mod recovery;
pub mod result;
pub mod stats;
pub mod vbox;

pub use gc::SnapshotRegistry;
pub use history::{check_history, replay_committed, HistoryError, TxRecord};
pub use logic::{TxLogic, TxOp, TxSource};
pub use metrics::{
    AbortCounts, AbortReason, FaultCounts, FaultEvent, GcStats, Histogram, MetricsReport, Sample,
    Series,
};
pub use mv_exec::{MvExec, MvExecConfig, PlainSetArea, SetArea};
pub use phase::Phase;
pub use recovery::RetryPolicy;
pub use result::RunResult;
pub use stats::{CommitStats, TimeBreakdown};
pub use vbox::VBoxHeap;
