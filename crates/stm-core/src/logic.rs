//! The resumable transaction-logic interface.
//!
//! Workloads describe *what* a transaction does; STMs decide *how* each
//! operation is executed (which versions to read, what to lock, when to
//! abort). The bridge is [`TxLogic`]: a small state machine that, fed the
//! result of its previous read, emits the next logical operation. STM client
//! kernels drive one `TxLogic` per lane, one operation per simulated
//! instruction, so transaction bodies interleave realistically across warps.
//!
//! Items are *logical* indices (`0..num_items`); each STM maps them onto its
//! own memory layout (VBox arrays, lock-table stripes, …).

/// One logical operation requested by a transaction body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOp {
    /// Read transactional item `item`; the value is passed to the next
    /// [`TxLogic::next`] call.
    Read { item: u64 },
    /// Write `value` to transactional item `item`.
    Write { item: u64, value: u64 },
    /// The body is complete; the STM may try to commit.
    Finish,
}

/// A resumable transaction body.
///
/// Contract: the STM calls [`TxLogic::next`] with `None` for the first
/// operation and thereafter with `Some(v)` iff the previous operation was a
/// `Read` that returned `v` (writes acknowledge with `None`). After an abort
/// the STM calls [`TxLogic::reset`] and replays from the start — bodies must
/// therefore be deterministic functions of their read values.
///
/// Bodies are `Send` because warp programs (which own in-flight bodies) may
/// be stepped on another host thread by `gpu_sim::Device::run_parallel`.
pub trait TxLogic: Send {
    /// Whether this transaction is declared read-only at start (multi-version
    /// STMs give such transactions an instrumentation-free fast path).
    fn is_read_only(&self) -> bool;

    /// Restart the body from the beginning (after an abort).
    fn reset(&mut self);

    /// Produce the next operation. `last_read` carries the value returned by
    /// the immediately preceding `Read`, if any.
    fn next(&mut self, last_read: Option<u64>) -> TxOp;
}

/// A per-thread stream of transactions to execute. `None` means the thread's
/// quota is exhausted and the lane can retire. Sources are `Send` for the
/// same reason as [`TxLogic`]: the owning warp program may be stepped on
/// another host thread.
pub trait TxSource: Send {
    /// The concrete transaction-body type.
    type Tx: TxLogic;

    /// Produce the next transaction, or `None` when done.
    fn next_tx(&mut self) -> Option<Self::Tx>;
}

/// An `(item, value)` access list, as recorded in transaction histories.
pub type AccessList = Vec<(u64, u64)>;

/// Convenience: run a `TxLogic` to completion against a plain map, with no
/// concurrency control. Used by tests and by the sequential oracle.
pub fn run_sequential<L: TxLogic>(
    logic: &mut L,
    heap: &mut std::collections::HashMap<u64, u64>,
) -> (AccessList, AccessList) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut last = None;
    loop {
        match logic.next(last) {
            TxOp::Read { item } => {
                let v = *heap.get(&item).unwrap_or(&0);
                reads.push((item, v));
                last = Some(v);
            }
            TxOp::Write { item, value } => {
                heap.insert(item, value);
                writes.push((item, value));
                last = None;
            }
            TxOp::Finish => return (reads, writes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Reads `a`, reads `b`, writes `a+b` into `c`.
    struct Sum {
        step: u8,
        a: u64,
        b: u64,
        c: u64,
        acc: u64,
    }
    impl TxLogic for Sum {
        fn is_read_only(&self) -> bool {
            false
        }
        fn reset(&mut self) {
            self.step = 0;
            self.acc = 0;
        }
        fn next(&mut self, last_read: Option<u64>) -> TxOp {
            if let Some(v) = last_read {
                self.acc += v;
            }
            let op = match self.step {
                0 => TxOp::Read { item: self.a },
                1 => TxOp::Read { item: self.b },
                2 => TxOp::Write {
                    item: self.c,
                    value: self.acc,
                },
                _ => TxOp::Finish,
            };
            self.step += 1;
            op
        }
    }

    #[test]
    fn sequential_driver_executes_body() {
        let mut heap = HashMap::new();
        heap.insert(1, 10);
        heap.insert(2, 32);
        let mut tx = Sum {
            step: 0,
            a: 1,
            b: 2,
            c: 3,
            acc: 0,
        };
        let (reads, writes) = run_sequential(&mut tx, &mut heap);
        assert_eq!(reads, vec![(1, 10), (2, 32)]);
        assert_eq!(writes, vec![(3, 42)]);
        assert_eq!(heap[&3], 42);
    }

    #[test]
    fn reset_replays_identically() {
        let mut heap = HashMap::new();
        heap.insert(1, 5);
        let mut tx = Sum {
            step: 0,
            a: 1,
            b: 1,
            c: 9,
            acc: 0,
        };
        let first = run_sequential(&mut tx, &mut heap);
        tx.reset();
        let second = run_sequential(&mut tx, &mut heap);
        // b reads c=9's old value? No: both runs read item 1 twice.
        assert_eq!(first.0, second.0);
        assert_eq!(first.1, second.1);
    }

    #[test]
    fn missing_items_read_zero() {
        let mut heap = HashMap::new();
        let mut tx = Sum {
            step: 0,
            a: 7,
            b: 8,
            c: 9,
            acc: 0,
        };
        let (reads, writes) = run_sequential(&mut tx, &mut heap);
        assert_eq!(reads, vec![(7, 0), (8, 0)]);
        assert_eq!(writes, vec![(9, 0)]);
    }
}
