#!/bin/bash
# Regenerate every table and figure of the paper, teeing outputs to results/.
# bank_suite covers Fig.2a/2b, Fig.4, Tables I & II in one sweep; mc_suite
# covers Fig.3 and Tables III & IV; table5 and multiserver run separately.
#
# With no arguments, runs the full simulated-experiment manifest from
# scripts/bench-bins.sh; pass bin names to run a subset. Native bins work
# too (e.g. `./run_experiments.sh native_suite` sweeps the commit-pipeline
# depth lanes listed in the manifest's NATIVE_PIPELINE_DEPTHS).
set -u
cd "$(dirname "$0")"
source scripts/bench-bins.sh
if [ "$#" -eq 0 ]; then
  set -- $SIM_BINS
fi
for exp in "$@"; do
  echo "=== $exp ($(date +%H:%M:%S)) ==="
  cargo run -p bench --release -q --bin "$exp" > "results/$exp.txt" 2> "results/$exp.log"
  echo "--- $exp done ($(date +%H:%M:%S), exit $?) ---"
done
echo ALL_EXPERIMENTS_DONE
